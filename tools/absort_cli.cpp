// absort_cli -- command-line front end to the library.
//
//   absort_cli list
//   absort_cli report <network> <n>        cost/depth/time + component inventory
//   absort_cli sort   <network> <n> [bits] sort a 0/1 string (random if omitted)
//   absort_cli dot    <network> <n>        Graphviz netlist to stdout
//   absort_cli save   <network> <n>        text netlist to stdout (round-trippable)
//   absort_cli vcd    <n> <k>              fish-hardware waveform of one sort (VCD)
//   absort_cli batch  <network> <n> [count] [threads] [--stats]
//                     [--backend auto|interpreter|simd|native]
//                                          batch sort via the bit-sliced engine:
//                                          `count` random vectors (or '-' = read
//                                          0/1 lines from stdin); reports
//                                          vectors/sec vs per-vector evaluation,
//                                          the resolved backend, and the JIT
//                                          counters (native backend);
//                                          --stats prints the compiled word
//                                          programs' optimizer shrinkage, lane
//                                          width, and thread count
//   absort_cli verify <network> <n> [reps] randomized verification
//   absort_cli permute <permuter> <n> [d0,d1,..]
//                                          route one destination permutation
//                                          (random if omitted) through the
//                                          micro-batching PermuteService and
//                                          print the realized output_source;
//                                          exit 0 routed, 3 unroutable
//   absort_cli activity <network> <n>      steering-element activity on random inputs
//   absort_cli optimize <network> <n>      optimizer savings report
//   absort_cli table2 <n>                  the paper's Table II at size n
//   absort_cli serve --selftest [--stats] [--chaos <seed>] [producers] [requests]
//                                          multi-producer traffic through the
//                                          micro-batching SortService, verified
//                                          bit-for-bit against per-vector sort();
//                                          --stats dumps the ServiceStats JSON;
//                                          --chaos <seed> runs the same traffic
//                                          under a seeded FaultPlan injecting
//                                          compile/eval/latency faults, every
//                                          structural FaultKind, and corrupted
//                                          output lanes -- PASS requires every
//                                          future to resolve, every Ok result
//                                          bit-identical, and every enabled
//                                          fault class to have fired
//   absort_cli serve --tcp [port]          expose the service over TCP with the
//                                          binary protocol of edge/frame.hpp
//                                          (port 0 = kernel-assigned, printed);
//                                          runs until SIGINT/SIGTERM
//   absort_cli serve --tcp --selftest [--stats] [clients] [requests]
//                                          loopback end-to-end self-test:
//                                          concurrent clients verified
//                                          bit-for-bit against per-vector
//                                          sort(), plus deadline-expiry,
//                                          shed-under-overload (Reject queue ->
//                                          Shedded responses), malformed-frame,
//                                          and statsz cases
//
// Networks: everything in sorters::registry() -- see `absort_cli list`.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "absort/analysis/activity.hpp"
#include "absort/edge/edge_client.hpp"
#include "absort/edge/edge_server.hpp"
#include "absort/analysis/tables.hpp"
#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/levelized.hpp"
#include "absort/netlist/native_engine.hpp"
#include "absort/netlist/optimize.hpp"
#include "absort/netlist/analyze.hpp"
#include "absort/netlist/serialize.hpp"
#include "absort/netlist/transform.hpp"
#include "absort/networks/permuters.hpp"
#include "absort/service/fault_injection.hpp"
#include "absort/service/permute_service.hpp"
#include "absort/service/sort_service.hpp"
#include "absort/sim/fish_hardware.hpp"
#include "absort/sorters/columnsort.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/rng.hpp"

using namespace absort;

namespace {

/// Registry lookup; unknown names throw, listing the available sorters
/// (caught and printed by main's error handler).
std::unique_ptr<sorters::BinarySorter> make_network(const std::string& name, std::size_t n) {
  return sorters::make_sorter(name, n);
}

/// Parses a --backend value; unknown names list the valid set and fail.
bool parse_backend_arg(const char* arg, netlist::Backend& out) {
  if (netlist::parse_backend(arg, out)) return true;
  std::fprintf(stderr, "unknown backend '%s'; valid backends: %s\n", arg,
               netlist::backend_names());
  return false;
}

/// Strict digits-only count parse.  strtoull alone silently wraps "-3" to
/// 2^64-3 and accepts "4x" as 4, so every user-facing count goes through
/// here: empty strings, signs, spaces, trailing junk, and overflow all fail.
bool parse_size_arg(const char* s, std::size_t& out) {
  if (s == nullptr || *s == '\0') return false;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s list\n"
               "  %s report <network> <n>\n"
               "  %s sort <network> <n> [bitstring]\n"
               "  %s dot <network> <n>\n"
               "  %s save <network> <n>\n"
               "  %s vcd <n> <k>\n"
               "  %s verify <network> <n> [reps]\n"
               "  %s permute <permuter> <n> [d0,d1,..]\n"
               "  %s batch <network> <n> [count|-] [threads] [--stats] [--backend <b>]\n"
               "  %s activity <network> <n>\n"
               "  %s optimize <network> <n>\n"
               "  %s table2 <n>\n"
               "  %s serve --selftest [--stats] [--chaos <seed>] [--shards <k>] [--pin]\n"
               "           [--backend <b>] [producers] [requests]\n"
               "  %s serve --tcp [port] [--shards <k>] [--pin] [--backend <b>]\n"
               "  %s serve --tcp --selftest [--stats] [--shards <k>] [clients] [requests]\n"
               "  (backends: auto|interpreter|simd|native)\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0, argv0, argv0, argv0);
  return 1;
}

int cmd_list() {
  for (const auto& e : sorters::registry()) {
    std::printf("%-17s %s\n", e.name, e.description);
  }
  return 0;
}

int cmd_report(const std::string& name, std::size_t n) {
  const auto net = make_network(name, n);
  if (!net) return 1;
  for (const auto& model :
       {netlist::CostModel::paper_unit(), netlist::CostModel::gate_level()}) {
    const auto r = net->cost_report(model);
    std::printf("[%s] cost %.0f  depth %.0f  sorting time %.0f\n", model.name.c_str(), r.cost,
                r.depth, net->sorting_time(model));
    std::printf("  %s\n", netlist::summarize(r).c_str());
  }
  if (auto* fish = dynamic_cast<const sorters::FishSorter*>(net.get())) {
    const auto t = fish->timing();
    std::printf("model B timing: front %g/%g (unpiped/piped), merge %g/%g, total %g/%g\n",
                t.front_unpipelined, t.front_pipelined, t.merge_unpipelined, t.merge,
                t.total_unpipelined, t.total_pipelined);
  }
  return 0;
}

int cmd_sort(const std::string& name, std::size_t n, const char* bits) {
  const auto net = make_network(name, n);
  if (!net) return 1;
  BitVec in;
  if (bits) {
    in = BitVec::parse(bits);
    if (in.size() != n) {
      std::fprintf(stderr, "bitstring has %zu bits, expected %zu\n", in.size(), n);
      return 1;
    }
  } else {
    Xoshiro256 rng(0xC0FFEE);
    in = workload::random_bits(rng, n);
  }
  const auto out = net->sort(in);
  std::printf("in : %s\nout: %s  (%s)\n", in.str().c_str(), out.str().c_str(),
              out.is_sorted_ascending() ? "sorted" : "NOT SORTED");
  return out.is_sorted_ascending() ? 0 : 2;
}

int cmd_dot(const std::string& name, std::size_t n) {
  const auto net = make_network(name, n);
  if (!net) return 1;
  if (!net->is_combinational()) {
    std::fprintf(stderr, "%s is a model-B (time-multiplexed) network; no single circuit\n",
                 name.c_str());
    return 1;
  }
  std::fputs(netlist::to_dot(net->build_circuit()).c_str(), stdout);
  return 0;
}

int cmd_verify(const std::string& name, std::size_t n, std::size_t reps) {
  const auto net = make_network(name, n);
  if (!net) return 1;
  Xoshiro256 rng(1);
  std::size_t bad = 0;
  for (std::size_t i = 0; i < reps; ++i) {
    const auto in = workload::random_bits(rng, n);
    const auto out = net->sort(in);
    if (!out.is_sorted_ascending() || out.count_ones() != in.count_ones()) {
      ++bad;
      std::printf("FAIL: %s -> %s\n", in.str().c_str(), out.str().c_str());
    }
  }
  std::printf("%zu/%zu random inputs sorted correctly\n", reps - bad, reps);
  return bad == 0 ? 0 : 2;
}

// permute <permuter> <n> [d0,d1,..]: one destination permutation through the
// PermuteService -- the full serving path (affinity routing, micro-batching,
// the compiled route circuit) even for a single request -- then verified
// against the submitted pattern (output_source[dest[i]] == i).
int cmd_permute(const std::string& name, std::size_t n, const char* dest_arg) {
  std::vector<std::uint32_t> dest(n);
  if (dest_arg != nullptr) {
    const char* p = dest_arg;
    std::size_t count = 0;
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p || (*end != ',' && *end != '\0') || count >= n) {
        std::fprintf(stderr, "permute: dest must be %zu comma-separated entries, got '%s'\n", n,
                     dest_arg);
        return 1;
      }
      dest[count++] = static_cast<std::uint32_t>(v);
      p = (*end == ',') ? end + 1 : end;
    }
    if (count != n) {
      std::fprintf(stderr, "permute: dest has %zu entries, expected %zu\n", count, n);
      return 1;
    }
  } else {
    Xoshiro256 rng(0xDE57);
    const auto perm = workload::random_permutation(rng, n);
    for (std::size_t i = 0; i < n; ++i) dest[i] = static_cast<std::uint32_t>(perm[i]);
  }

  std::printf("dest         :");
  for (const auto d : dest) std::printf(" %u", d);
  std::printf("\n");

  service::PermuteService svc;
  const auto res = svc.permute(name, dest);  // validates name / n / permutation
  if (res.status == service::Status::Unroutable) {
    std::printf("unroutable: %s blocks this pattern (well-formed, but this fabric cannot "
                "realize it)\n",
                name.c_str());
    return 3;
  }
  if (res.status != service::Status::Ok) {
    std::printf("permute failed: %s\n", service::to_string(res.status));
    return 2;
  }
  std::printf("output_source:");
  for (const auto s : res.output_source) std::printf(" %u", s);
  std::printf("\n");
  bool exact = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (res.output_source[dest[i]] != i) exact = false;
  }
  std::printf("%s\n", exact ? "verified: output j receives input output_source[j]"
                            : "MISMATCH against submitted permutation");
  return exact ? 0 : 2;
}

void print_program_stats(const char* label, const netlist::Circuit& c) {
  const netlist::BitSlicedEvaluator ev(c);
  const auto& st = ev.stats();
  const double saved =
      st.ops_before ? 100.0 * (1.0 - static_cast<double>(st.ops_after) /
                                         static_cast<double>(st.ops_before))
                    : 0.0;
  std::printf("  %-13s ops %zu -> %zu (%.1f%% saved)  slots %zu -> %zu  peak live %zu\n", label,
              st.ops_before, st.ops_after, saved, st.slots_before, st.slots_after, st.peak_live);
}

int cmd_batch(const std::string& name, std::size_t n, const char* count_arg,
              const char* threads_arg, bool stats, netlist::Backend backend) {
  const auto net = make_network(name, n);
  if (!net) return 1;
  std::size_t threads = 0;  // 0 = auto (hardware concurrency)
  if (threads_arg != nullptr && !parse_size_arg(threads_arg, threads)) {
    std::fprintf(stderr, "batch: threads must be a non-negative integer, got '%s'\n",
                 threads_arg);
    return 1;
  }
  const sorters::BatchOptions opts{.threads = threads, .backend = backend};

  std::vector<BitVec> batch;
  const bool from_stdin = count_arg && std::strcmp(count_arg, "-") == 0;
  if (from_stdin) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      auto v = BitVec::parse(line);
      if (v.size() != n) {
        std::fprintf(stderr, "line has %zu bits, expected %zu: %s\n", v.size(), n, line.c_str());
        return 1;
      }
      batch.push_back(std::move(v));
    }
    if (batch.empty()) {
      std::fprintf(stderr, "no input vectors on stdin\n");
      return 1;
    }
  } else {
    std::size_t count = 1024;
    if (count_arg != nullptr && (!parse_size_arg(count_arg, count) || count == 0)) {
      std::fprintf(stderr, "batch count must be a positive integer, got: %s\n", count_arg);
      return 1;
    }
    Xoshiro256 rng(0xBA7C4);
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) batch.push_back(workload::random_bits(rng, n));
  }

  if (stats) {
    const std::size_t blocks =
        (batch.size() + netlist::kBlockLanes - 1) / netlist::kBlockLanes;
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t used = std::min(threads == 0 ? hw : threads, std::max<std::size_t>(1, blocks));
    std::printf("compiled word programs (%zu lanes/SIMD pass, %zu-vector blocks, %zu thread%s):\n",
                wordvec::kSimdLanes, netlist::kBlockLanes, used, used == 1 ? "" : "s");
    if (net->is_combinational()) {
      print_program_stats("circuit", net->build_circuit());
    } else if (const auto* fish = dynamic_cast<const sorters::FishSorter*>(net.get())) {
      print_program_stats("small sorter", fish->small_sorter_circuit());
      print_program_stats("k-way merger", fish->merger_circuit());
    } else if (const auto* cs = dynamic_cast<const sorters::ColumnsortSorter*>(net.get())) {
      print_program_stats("column sorter", cs->column_sorter_circuit());
    }
  }

  using clock = std::chrono::steady_clock;

  // Per-vector baseline on a slice of the batch (levelized netlist walk for
  // combinational networks, the value face for model B).  Repeat the probe
  // until enough wall time has passed that the rate is meaningful -- a single
  // pass over 64 tiny vectors can finish within one steady_clock tick.
  const std::size_t probe = std::min<std::size_t>(batch.size(), 64);
  constexpr double kMinProbeSeconds = 1e-3;
  double single_s = 0;
  std::size_t probe_reps = 0;
  if (net->is_combinational()) {
    const netlist::LevelizedCircuit lc(net->build_circuit());
    const auto t0 = clock::now();
    do {
      for (std::size_t i = 0; i < probe; ++i) (void)lc.eval(batch[i]);
      ++probe_reps;
      single_s = std::chrono::duration<double>(clock::now() - t0).count();
    } while (single_s < kMinProbeSeconds);
  } else {
    const auto t0 = clock::now();
    do {
      for (std::size_t i = 0; i < probe; ++i) (void)net->sort(batch[i]);
      ++probe_reps;
      single_s = std::chrono::duration<double>(clock::now() - t0).count();
    } while (single_s < kMinProbeSeconds);
  }

  // Compile the engine outside the timed region so the throughput figure is
  // the steady-state rate; compile time (which for the native backend may
  // include a JIT toolchain run) is reported separately.
  const auto jit_before = netlist::jit_counters();
  const auto tc0 = clock::now();
  const auto engine = net->make_batch_sorter(opts);
  const double compile_s = std::chrono::duration<double>(clock::now() - tc0).count();
  const auto jit = netlist::jit_counters();

  const auto t0 = clock::now();
  const auto sorted = engine->run(batch);
  const double batch_s = std::chrono::duration<double>(clock::now() - t0).count();

  std::size_t bad = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (!sorted[i].is_sorted_ascending() || sorted[i].count_ones() != batch[i].count_ones()) {
      ++bad;
    }
  }
  if (from_stdin || batch.size() <= 16) {
    for (const auto& v : sorted) std::printf("%s\n", v.str().c_str());
  }
  const double single_vps = static_cast<double>(probe_reps * probe) / single_s;
  const double batch_vps = static_cast<double>(batch.size()) / batch_s;
  std::printf("%s n=%zu: %zu vectors, %zu bad\n", name.c_str(), n, batch.size(), bad);
  std::printf("backend: %s (requested %s)   engine compile: %.1f ms\n",
              netlist::to_string(engine->backend()), netlist::to_string(backend),
              compile_s * 1e3);
  std::printf("jit: compiles=%llu cache_hits=%llu fallbacks=%llu\n",
              static_cast<unsigned long long>(jit.compiles - jit_before.compiles),
              static_cast<unsigned long long>(jit.cache_hits - jit_before.cache_hits),
              static_cast<unsigned long long>(jit.fallbacks - jit_before.fallbacks));
  std::printf("per-vector: %.0f vectors/sec   batch: %.0f vectors/sec   speedup %.1fx\n",
              single_vps, batch_vps, batch_vps / single_vps);
  return bad == 0 ? 0 : 2;
}

int cmd_table2(std::size_t n) {
  std::fputs(analysis::render_table2(analysis::table2(n), n).c_str(), stdout);
  return 0;
}

int cmd_save(const std::string& name, std::size_t n) {
  const auto net = make_network(name, n);
  if (!net) return 1;
  if (!net->is_combinational()) {
    std::fprintf(stderr, "%s is a model-B network; no single circuit to save\n", name.c_str());
    return 1;
  }
  std::fputs(netlist::to_text(net->build_circuit()).c_str(), stdout);
  return 0;
}

int cmd_activity(const std::string& name, std::size_t n) {
  const auto net = make_network(name, n);
  if (!net) return 1;
  if (!net->is_combinational()) {
    std::fprintf(stderr, "%s is a model-B network\n", name.c_str());
    return 1;
  }
  Xoshiro256 rng(2);
  const auto r = analysis::measure_activity(net->build_circuit(), rng, 200);
  std::printf("steering activity over 200 uniform inputs: %.3f\n", r.steering_activity());
  return 0;
}

int cmd_optimize(const std::string& name, std::size_t n) {
  const auto net = make_network(name, n);
  if (!net) return 1;
  if (!net->is_combinational()) {
    std::fprintf(stderr, "%s is a model-B network\n", name.c_str());
    return 1;
  }
  netlist::OptimizeStats st;
  (void)netlist::optimize(net->build_circuit(), &st);
  std::printf("components %zu -> %zu (folded %zu, dead %zu, %.1f%% saved)\n", st.before,
              st.after, st.folded, st.dead,
              st.before ? 100.0 * (1.0 - double(st.after) / double(st.before)) : 0.0);
  return 0;
}

// serve --selftest: hammer a SortService from `producers` threads, each
// submitting `requests` random vectors round-robin across a mixed set of
// (sorter, n) keys with a bounded in-flight window, and verify every answer
// bit-for-bit against per-vector sort().  Exercises the whole serving path:
// coalescing, per-key engine caching, deadlines, and drain-then-stop.
//
// With --chaos <seed>, the same traffic runs under a seeded FaultPlan (all
// injection sites enabled; see fault_injection.hpp): PASS then additionally
// requires that no request was lost or answered incorrectly while every
// enabled fault class -- compile, eval, latency, all three structural
// FaultKinds, corrupted lanes -- actually fired, and that the degradation
// ladder (retry / quarantine / per-vector repair) left no unrecoverable
// request behind.
int cmd_serve(bool selftest, bool stats, std::size_t producers, std::size_t requests,
              bool chaos, std::uint64_t chaos_seed, std::size_t shards, bool pin,
              netlist::Backend backend) {
  if (!selftest) {
    std::fprintf(stderr, "serve: only --selftest traffic is implemented; pass --selftest\n");
    return 1;
  }
  struct Key {
    const char* sorter;
    std::size_t n;
  };
  const Key keys[] = {{"prefix", 64},     {"mux-merger", 128}, {"batcher", 32},
                      {"periodic-k", 48}, {"multiway-k", 64},  {"fish", 64}};
  // Per-vector reference oracles, one per key.
  std::vector<std::unique_ptr<sorters::BinarySorter>> refs;
  for (const auto& k : keys) refs.push_back(sorters::make_sorter(k.sorter, k.n));

  service::ServiceOptions so;
  so.max_linger = std::chrono::microseconds(300);
  so.shards = shards;
  so.pin_threads = pin;
  so.batch.backend = backend;
  std::shared_ptr<service::FaultPlan> plan;
  if (chaos) {
    plan = std::make_shared<service::FaultPlan>(service::FaultPlanOptions::chaos(chaos_seed));
    so.fault_plan = plan;  // forces the output self-check on
    so.quarantine_after = 2;
    so.probation = 3;  // parole quickly so the batch path keeps re-engaging
    so.compile_backoff = std::chrono::microseconds(100);
    so.compile_backoff_cap = std::chrono::microseconds(2000);
  }
  service::SortService svc(so);

  constexpr std::size_t kWindow = 8;  ///< in-flight requests per producer
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Xoshiro256 rng(0x5E21E ^ p);
      struct InFlight {
        std::size_t key;
        BitVec input;
        std::future<service::SortResult> future;
      };
      std::vector<InFlight> window;
      const auto settle = [&](InFlight f) {
        const auto res = f.future.get();
        if (res.status == service::Status::Failed) {
          failed.fetch_add(1);
        } else if (res.status != service::Status::Ok ||
                   res.output != refs[f.key]->sort(f.input)) {
          mismatches.fetch_add(1);
        } else {
          ok.fetch_add(1);
        }
      };
      for (std::size_t i = 0; i < requests; ++i) {
        const std::size_t k = (p + i) % std::size(keys);
        auto in = workload::random_bits(rng, keys[k].n);
        auto fut = svc.submit(keys[k].sorter, in);
        window.push_back(InFlight{k, std::move(in), std::move(fut)});
        if (window.size() >= kWindow) {
          settle(std::move(window.front()));
          window.erase(window.begin());
        }
      }
      for (auto& f : window) settle(std::move(f));
    });
  }
  for (auto& t : threads) t.join();

  // A deliberately pre-expired deadline must come back cancelled, and a
  // stopped service must refuse new work: both part of the self-test.
  const auto expired = svc.submit("prefix", BitVec(64),
                                  service::SortService::Clock::now() -
                                      std::chrono::milliseconds(1))
                           .get();
  svc.stop();
  const auto after_stop = svc.submit("prefix", BitVec(64)).get();

  const auto st = svc.stats();
  std::printf("serve selftest%s: %zu producers x %zu requests, %zu ok, %zu failed, "
              "%zu mismatches\n",
              chaos ? " [chaos]" : "", producers, requests, ok.load(), failed.load(),
              mismatches.load());
  std::printf("expired probe: %s   post-stop probe: %s\n",
              service::to_string(expired.status), service::to_string(after_stop.status));
  std::printf("batches %llu  mean batch %.1f  compiled engines %llu  p99 queue wait %llu us\n",
              static_cast<unsigned long long>(st.batches), st.batch_size.mean(),
              static_cast<unsigned long long>(st.compiled),
              static_cast<unsigned long long>(st.queue_wait_us.percentile(0.99)));
  for (const auto& e : st.engines) {
    std::printf("engine %-12s n=%-4zu shard=%zu backend=%s\n", e.sorter.c_str(), e.n, e.shard,
                netlist::to_string(e.backend));
  }
  std::printf("jit: compiles=%llu cache_hits=%llu fallbacks=%llu\n",
              static_cast<unsigned long long>(st.jit_compiles),
              static_cast<unsigned long long>(st.jit_cache_hits),
              static_cast<unsigned long long>(st.jit_fallbacks));
  if (svc.shard_count() > 1) {
    std::printf("shards %zu  steals %llu  stolen requests %llu  per-shard batches [",
                svc.shard_count(), static_cast<unsigned long long>(st.steals),
                static_cast<unsigned long long>(st.stolen_requests));
    for (std::size_t i = 0; i < st.per_shard.size(); ++i) {
      std::printf("%s%llu", i ? " " : "", static_cast<unsigned long long>(st.per_shard[i].batches));
    }
    std::printf("]\n");
  }

  bool covered = true;
  if (chaos) {
    const auto c = plan->counters();
    covered = c.covers(plan->options());
    std::printf("chaos seed %llu: %llu faults injected (compile %llu, eval %llu, "
                "latency %llu, circuit %llu [sc0 %llu, sc1 %llu, swap %llu], "
                "corrupted lanes %llu)%s\n",
                static_cast<unsigned long long>(chaos_seed),
                static_cast<unsigned long long>(c.total()),
                static_cast<unsigned long long>(c.compile_fails),
                static_cast<unsigned long long>(c.eval_throws),
                static_cast<unsigned long long>(c.latency_spikes),
                static_cast<unsigned long long>(c.circuit_faults),
                static_cast<unsigned long long>(c.circuit_faults_by_kind[0]),
                static_cast<unsigned long long>(c.circuit_faults_by_kind[1]),
                static_cast<unsigned long long>(c.circuit_faults_by_kind[2]),
                static_cast<unsigned long long>(c.corrupted_lanes),
                covered ? "" : "  [NOT ALL FAULT CLASSES FIRED]");
    std::printf("ladder: retries %llu  quarantined %llu  degraded %llu  "
                "self-check misses %llu  unrecoverable %llu\n",
                static_cast<unsigned long long>(st.retries),
                static_cast<unsigned long long>(st.quarantined),
                static_cast<unsigned long long>(st.degraded),
                static_cast<unsigned long long>(st.self_check_failed),
                static_cast<unsigned long long>(st.unrecoverable));
  }
  if (stats) std::printf("%s\n", st.to_json().c_str());

  // Every submitted request must have resolved to a terminal state; under
  // chaos the per-vector fallback keeps even injected failures recoverable,
  // so Status::Failed answers also fail the self-test.
  const bool pass = mismatches.load() == 0 && failed.load() == 0 &&
                    ok.load() == producers * requests &&
                    expired.status == service::Status::Expired &&
                    after_stop.status == service::Status::Stopped && covered;
  std::printf("serve selftest: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 2;
}

std::atomic<bool> g_interrupted{false};

// serve --tcp --selftest: the edge's end-to-end self-test, entirely over
// loopback TCP -- every answer travels through the framing codec, the epoll
// reactors, and the waiter pool, and is verified bit-for-bit against
// per-vector sort().  Five scenarios:
//
//   1. `clients` concurrent connections x `requests` mixed-(sorter, n)
//      requests each against a default-options server: every response Ok and
//      bit-identical to the reference oracle;
//   2. permute routing: every registry permuter at n = 16, identity plus
//      random destinations over the same connection style -- Ok responses
//      verified output_source[dest[j]] == j, Unroutable only where the
//      reference permuter also refuses the pattern;
//   3. deadline expiry: a 1 us relative deadline under a 5 ms linger window
//      is already past when the dispatcher forms the batch -> Expired on the
//      wire;
//   4. shed under overload: a 1-slot Reject queue behind a 1-lane batch
//      limit, hit with a 128-deep pipelined burst -> a mix of Ok and
//      explicit Shedded responses, every request answered, none lost;
//   5. protocol hygiene: a bad-magic frame answers BadRequest and closes the
//      connection (decode_errors == 1), and statsz returns the combined
//      service+edge JSON.
int cmd_serve_tcp_selftest(bool stats, std::size_t clients, std::size_t requests,
                           std::size_t shards, bool pin, netlist::Backend backend) {
  struct Key {
    const char* sorter;
    std::size_t n;
  };
  const Key keys[] = {{"prefix", 64},     {"mux-merger", 128}, {"batcher", 32},
                      {"periodic-k", 48}, {"multiway-k", 64},  {"fish", 64}};
  std::vector<std::unique_ptr<sorters::BinarySorter>> refs;
  for (const auto& k : keys) refs.push_back(sorters::make_sorter(k.sorter, k.n));

  // --- scenario 1: concurrent clients, bit-exact ---------------------------
  service::ServiceOptions so;
  so.max_linger = std::chrono::microseconds(300);
  so.shards = shards;
  so.pin_threads = pin;
  so.batch.backend = backend;
  service::SortService svc(so);
  service::PermuteOptions po;
  po.shards = shards;
  po.pin_threads = pin;
  po.batch.backend = backend;
  service::PermuteService psvc(po);
  edge::EdgeOptions eo;
  eo.reactors = 2;
  edge::EdgeServer server(svc, psvc, eo);
  server.start();

  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Xoshiro256 rng(0xEDE5E1F ^ c);
        edge::EdgeClient client;
        client.connect("127.0.0.1", server.port());
        for (std::size_t i = 0; i < requests; ++i) {
          const std::size_t k = (c + i) % std::size(keys);
          const auto in = workload::random_bits(rng, keys[k].n);
          const auto resp = client.sort(keys[k].sorter, in);
          if (resp.status == edge::WireStatus::Ok && resp.output == refs[k]->sort(in)) {
            ok.fetch_add(1);
          } else {
            bad.fetch_add(1);
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client %zu: %s\n", c, e.what());
        bad.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const bool exact = bad.load() == 0 && ok.load() == clients * requests;
  std::printf("tcp selftest: %zu clients x %zu requests, %zu ok, %zu bad -> %s\n", clients,
              requests, ok.load(), bad.load(), exact ? "bit-exact" : "MISMATCH");

  // --- scenario 2: permute routing over the same wire -----------------------
  bool permute_ok = true;
  std::size_t perm_routed = 0, perm_unroutable = 0;
  {
    constexpr std::size_t kPermN = 16;
    Xoshiro256 prng(0x9E87);
    edge::EdgeClient pclient;
    pclient.connect("127.0.0.1", server.port());
    for (const auto& entry : permuters::registry()) {
      const auto ref = permuters::make_permuter(entry.name, kPermN);
      for (std::size_t trial = 0; trial < 8; ++trial) {
        std::vector<std::size_t> wide(kPermN);
        if (trial == 0) {
          for (std::size_t i = 0; i < kPermN; ++i) wide[i] = i;  // identity always routes
        } else {
          wide = workload::random_permutation(prng, kPermN);
        }
        std::vector<std::uint16_t> dest(kPermN);
        for (std::size_t i = 0; i < kPermN; ++i) dest[i] = static_cast<std::uint16_t>(wide[i]);
        const auto resp = pclient.permute(entry.name, dest);
        const bool routable = ref->route(wide).has_value();
        if (routable && resp.status == edge::WireStatus::Ok) {
          ++perm_routed;
          for (std::size_t j = 0; j < kPermN; ++j) {
            if (resp.output_source[dest[j]] != j) permute_ok = false;
          }
        } else if (!routable && resp.status == edge::WireStatus::Unroutable) {
          ++perm_unroutable;
        } else {
          permute_ok = false;
        }
      }
    }
    permute_ok = permute_ok && perm_routed > 0;
  }
  std::printf("permute probe (%zu permuters x 8 patterns @ n=16): %zu routed, "
              "%zu unroutable -> %s\n",
              permuters::registry().size(), perm_routed, perm_unroutable,
              permute_ok ? "verified" : "MISMATCH");

  // --- scenario 3: deadline expiry ------------------------------------------
  service::ServiceOptions slow;
  slow.max_linger = std::chrono::microseconds(5000);
  slow.shards = shards;
  slow.pin_threads = pin;
  service::SortService slow_svc(slow);
  edge::EdgeServer slow_server(slow_svc);
  slow_server.start();
  edge::EdgeClient probe;
  probe.connect("127.0.0.1", slow_server.port());
  const auto expired = probe.sort("prefix", BitVec(64), /*deadline_us=*/1);
  const bool expiry_ok = expired.status == edge::WireStatus::Expired;
  std::printf("deadline probe (1 us budget, 5 ms linger): %s\n",
              edge::to_string(expired.status));
  slow_server.stop();

  // --- scenario 4: shed under overload --------------------------------------
  // queue_capacity is per shard, but the burst is one (sorter, n) key, so it
  // lands on one shard's 1-slot queue regardless of the shard count.
  service::ServiceOptions tiny;
  tiny.overflow = service::ServiceOptions::Overflow::Reject;
  tiny.queue_capacity = 1;
  tiny.max_batch_lanes = 1;
  tiny.max_linger = std::chrono::microseconds(0);
  tiny.shards = shards;
  tiny.pin_threads = pin;
  tiny.steal_threshold = 0;  // a thief would defeat the 1-slot backpressure probe
  service::SortService tiny_svc(tiny);
  edge::EdgeServer tiny_server(tiny_svc);
  tiny_server.start();
  edge::EdgeClient burst;
  burst.connect("127.0.0.1", tiny_server.port());
  Xoshiro256 rng(0x51ED);
  constexpr std::size_t kBurst = 128;
  for (std::size_t i = 0; i < kBurst; ++i) {
    (void)burst.send_sort("mux-merger", workload::random_bits(rng, 512));
  }
  std::size_t burst_ok = 0, burst_shed = 0, burst_other = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    edge::Response resp;
    if (!burst.recv(resp)) break;
    if (resp.status == edge::WireStatus::Ok) {
      ++burst_ok;
    } else if (resp.status == edge::WireStatus::Shedded) {
      ++burst_shed;
    } else {
      ++burst_other;
    }
  }
  const bool shed_ok =
      burst_ok + burst_shed == kBurst && burst_other == 0 && burst_shed > 0;
  std::printf("overload burst (%zu deep, 1-slot Reject queue): %zu ok, %zu shedded, "
              "%zu other -> %s\n",
              kBurst, burst_ok, burst_shed, burst_other,
              shed_ok ? "all answered" : "LOST OR WEDGED");
  tiny_server.stop();

  // --- scenario 5: protocol hygiene + statsz --------------------------------
  edge::EdgeClient vandal;
  vandal.connect("127.0.0.1", server.port());
  vandal.send_raw({0x10, 0x00, 0x00, 0x00, 0xFF, 0xFF, 0x01, 0x01,
                   0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  edge::Response vresp;
  bool hygiene_ok = vandal.recv(vresp) && vresp.status == edge::WireStatus::BadRequest;
  const auto vstatus = vresp.status;
  hygiene_ok = hygiene_ok && !vandal.recv(vresp);  // server closed the torn stream
  edge::EdgeClient statsc;
  statsc.connect("127.0.0.1", server.port());
  const auto json = statsc.statsz();
  hygiene_ok = hygiene_ok && json.find("\"decode_errors\": 1") != std::string::npos &&
               json.find("\"shedded\"") != std::string::npos;
  std::printf("bad-magic frame -> %s + close; statsz %zu bytes\n",
              edge::to_string(vstatus), json.size());
  if (stats) std::printf("%s\n", json.c_str());
  server.stop();

  const bool pass = exact && permute_ok && expiry_ok && shed_ok && hygiene_ok;
  std::printf("tcp selftest: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 2;
}

// serve --tcp [port]: foreground serving (Sort and Permute) until
// SIGINT/SIGTERM.
int cmd_serve_tcp(std::uint16_t port, std::size_t shards, bool pin, netlist::Backend backend) {
  service::ServiceOptions so;
  so.shards = shards;
  so.pin_threads = pin;
  so.batch.backend = backend;
  service::SortService svc(so);
  service::PermuteOptions po;
  po.shards = shards;
  po.pin_threads = pin;
  po.batch.backend = backend;
  service::PermuteService psvc(po);
  edge::EdgeOptions eo;
  eo.port = port;
  edge::EdgeServer server(svc, psvc, eo);
  server.start();
  std::printf("absort edge listening on 127.0.0.1:%u (binary protocol v%u; "
              "Sort + Permute; Ctrl-C stops)\n",
              server.port(), edge::kVersion);
  std::fflush(stdout);
  std::signal(SIGINT, [](int) { g_interrupted.store(true); });
  std::signal(SIGTERM, [](int) { g_interrupted.store(true); });
  while (!g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  const auto st = server.stats();
  std::printf("edge stats at shutdown:\n%s\n", st.to_json().c_str());
  return 0;
}

int cmd_vcd(std::size_t n, std::size_t k) {
  sim::FishHardware hw(n, k);
  auto trace = hw.make_trace();
  hw.attach_trace(&trace);
  Xoshiro256 rng(0xF15E);
  (void)hw.sort(workload::random_bits(rng, n));
  std::fputs(trace.to_vcd("fish_sorter").c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "table2" && argc >= 3) {
      return cmd_table2(std::strtoull(argv[2], nullptr, 10));
    }
    if (cmd == "serve") {
      bool selftest = false, stats = false, chaos = false, tcp = false, pin = false;
      std::uint64_t chaos_seed = 1;
      std::uint16_t tcp_port = 0;
      std::size_t shards = 1;
      netlist::Backend backend = netlist::Backend::Auto;
      std::vector<const char*> pos;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--selftest") == 0) {
          selftest = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
          stats = true;
        } else if (std::strcmp(argv[i], "--pin") == 0) {
          pin = true;
        } else if (std::strcmp(argv[i], "--backend") == 0) {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "serve: --backend needs a value (%s)\n",
                         netlist::backend_names());
            return 1;
          }
          if (!parse_backend_arg(argv[++i], backend)) return 1;
        } else if (std::strcmp(argv[i], "--shards") == 0) {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "serve: --shards needs a count\n");
            return 1;
          }
          if (!parse_size_arg(argv[++i], shards) || shards == 0) {
            std::fprintf(stderr, "serve: --shards must be a positive integer, got '%s'\n",
                         argv[i]);
            return 1;
          }
        } else if (std::strcmp(argv[i], "--tcp") == 0) {
          tcp = true;
          // Optional port: consume the next argument only if it is numeric.
          // A numeric value out of port range is an error, not a positional.
          if (i + 1 < argc) {
            std::size_t v = 0;
            if (parse_size_arg(argv[i + 1], v)) {
              if (v > 65535) {
                std::fprintf(stderr, "serve: --tcp port must be 0..65535, got '%s'\n",
                             argv[i + 1]);
                return 1;
              }
              tcp_port = static_cast<std::uint16_t>(v);
              ++i;
            }
          }
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
          chaos = true;
          // Optional seed: consume the next argument only if it is numeric.
          if (i + 1 < argc) {
            char* end = nullptr;
            const auto v = std::strtoull(argv[i + 1], &end, 0);
            if (end != argv[i + 1] && *end == '\0') {
              chaos_seed = v;
              ++i;
            }
          }
        } else {
          pos.push_back(argv[i]);
        }
      }
      const std::size_t producers =
          pos.size() > 0 ? std::strtoull(pos[0], nullptr, 10) : (tcp ? 8 : 4),
          requests = pos.size() > 1 ? std::strtoull(pos[1], nullptr, 10) : (tcp ? 50 : 200);
      if (tcp && selftest) {
        return cmd_serve_tcp_selftest(stats, std::max<std::size_t>(1, producers),
                                      std::max<std::size_t>(1, requests), shards, pin, backend);
      }
      if (tcp) return cmd_serve_tcp(tcp_port, shards, pin, backend);
      return cmd_serve(selftest, stats, std::max<std::size_t>(1, producers),
                       std::max<std::size_t>(1, requests), chaos, chaos_seed, shards, pin,
                       backend);
    }
    if (argc < 4) return usage(argv[0]);
    const std::string name = argv[2];
    std::size_t n = 0;
    if (cmd != "vcd" && (!parse_size_arg(argv[3], n) || n == 0)) {
      std::fprintf(stderr, "%s: n must be a positive integer, got '%s'\n", cmd.c_str(),
                   argv[3]);
      return 1;
    }
    if (cmd == "vcd") {
      return cmd_vcd(std::strtoull(argv[2], nullptr, 10), std::strtoull(argv[3], nullptr, 10));
    }
    if (cmd == "report") return cmd_report(name, n);
    if (cmd == "sort") return cmd_sort(name, n, argc > 4 ? argv[4] : nullptr);
    if (cmd == "permute") return cmd_permute(name, n, argc > 4 ? argv[4] : nullptr);
    if (cmd == "dot") return cmd_dot(name, n);
    if (cmd == "save") return cmd_save(name, n);
    if (cmd == "activity") return cmd_activity(name, n);
    if (cmd == "optimize") return cmd_optimize(name, n);
    if (cmd == "verify") {
      return cmd_verify(name, n, argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1000);
    }
    if (cmd == "batch") {
      // Accept --stats / --backend anywhere among the trailing arguments.
      bool stats = false;
      netlist::Backend backend = netlist::Backend::Auto;
      std::vector<const char*> pos;
      for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats") == 0) {
          stats = true;
        } else if (std::strcmp(argv[i], "--backend") == 0) {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "batch: --backend needs a value (%s)\n",
                         netlist::backend_names());
            return 1;
          }
          if (!parse_backend_arg(argv[++i], backend)) return 1;
        } else {
          pos.push_back(argv[i]);
        }
      }
      return cmd_batch(name, n, pos.size() > 0 ? pos[0] : nullptr,
                       pos.size() > 1 ? pos[1] : nullptr, stats, backend);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
