file(REMOVE_RECURSE
  "libabsort.a"
)
