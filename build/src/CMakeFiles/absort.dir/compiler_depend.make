# Empty compiler generated dependencies file for absort.
# This may be replaced when dependencies are built.
