
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/absort/analysis/activity.cpp" "src/CMakeFiles/absort.dir/absort/analysis/activity.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/analysis/activity.cpp.o.d"
  "/root/repo/src/absort/analysis/crossover.cpp" "src/CMakeFiles/absort.dir/absort/analysis/crossover.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/analysis/crossover.cpp.o.d"
  "/root/repo/src/absort/analysis/formulas.cpp" "src/CMakeFiles/absort.dir/absort/analysis/formulas.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/analysis/formulas.cpp.o.d"
  "/root/repo/src/absort/analysis/tables.cpp" "src/CMakeFiles/absort.dir/absort/analysis/tables.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/analysis/tables.cpp.o.d"
  "/root/repo/src/absort/blocks/balanced_merger.cpp" "src/CMakeFiles/absort.dir/absort/blocks/balanced_merger.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/blocks/balanced_merger.cpp.o.d"
  "/root/repo/src/absort/blocks/comparator_stage.cpp" "src/CMakeFiles/absort.dir/absort/blocks/comparator_stage.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/blocks/comparator_stage.cpp.o.d"
  "/root/repo/src/absort/blocks/mux.cpp" "src/CMakeFiles/absort.dir/absort/blocks/mux.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/blocks/mux.cpp.o.d"
  "/root/repo/src/absort/blocks/prefix_adder.cpp" "src/CMakeFiles/absort.dir/absort/blocks/prefix_adder.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/blocks/prefix_adder.cpp.o.d"
  "/root/repo/src/absort/blocks/rank.cpp" "src/CMakeFiles/absort.dir/absort/blocks/rank.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/blocks/rank.cpp.o.d"
  "/root/repo/src/absort/blocks/swapper.cpp" "src/CMakeFiles/absort.dir/absort/blocks/swapper.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/blocks/swapper.cpp.o.d"
  "/root/repo/src/absort/netlist/analyze.cpp" "src/CMakeFiles/absort.dir/absort/netlist/analyze.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/netlist/analyze.cpp.o.d"
  "/root/repo/src/absort/netlist/circuit.cpp" "src/CMakeFiles/absort.dir/absort/netlist/circuit.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/netlist/circuit.cpp.o.d"
  "/root/repo/src/absort/netlist/levelized.cpp" "src/CMakeFiles/absort.dir/absort/netlist/levelized.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/netlist/levelized.cpp.o.d"
  "/root/repo/src/absort/netlist/optimize.cpp" "src/CMakeFiles/absort.dir/absort/netlist/optimize.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/netlist/optimize.cpp.o.d"
  "/root/repo/src/absort/netlist/serialize.cpp" "src/CMakeFiles/absort.dir/absort/netlist/serialize.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/netlist/serialize.cpp.o.d"
  "/root/repo/src/absort/netlist/transform.cpp" "src/CMakeFiles/absort.dir/absort/netlist/transform.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/netlist/transform.cpp.o.d"
  "/root/repo/src/absort/netlist/wiring.cpp" "src/CMakeFiles/absort.dir/absort/netlist/wiring.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/netlist/wiring.cpp.o.d"
  "/root/repo/src/absort/networks/batcher_banyan.cpp" "src/CMakeFiles/absort.dir/absort/networks/batcher_banyan.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/networks/batcher_banyan.cpp.o.d"
  "/root/repo/src/absort/networks/benes.cpp" "src/CMakeFiles/absort.dir/absort/networks/benes.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/networks/benes.cpp.o.d"
  "/root/repo/src/absort/networks/concentrator.cpp" "src/CMakeFiles/absort.dir/absort/networks/concentrator.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/networks/concentrator.cpp.o.d"
  "/root/repo/src/absort/networks/omega.cpp" "src/CMakeFiles/absort.dir/absort/networks/omega.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/networks/omega.cpp.o.d"
  "/root/repo/src/absort/networks/radix_permuter.cpp" "src/CMakeFiles/absort.dir/absort/networks/radix_permuter.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/networks/radix_permuter.cpp.o.d"
  "/root/repo/src/absort/networks/rank_concentrator.cpp" "src/CMakeFiles/absort.dir/absort/networks/rank_concentrator.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/networks/rank_concentrator.cpp.o.d"
  "/root/repo/src/absort/networks/sorting_permuter.cpp" "src/CMakeFiles/absort.dir/absort/networks/sorting_permuter.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/networks/sorting_permuter.cpp.o.d"
  "/root/repo/src/absort/seqclass/seqclass.cpp" "src/CMakeFiles/absort.dir/absort/seqclass/seqclass.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/seqclass/seqclass.cpp.o.d"
  "/root/repo/src/absort/sim/clocked_circuit.cpp" "src/CMakeFiles/absort.dir/absort/sim/clocked_circuit.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sim/clocked_circuit.cpp.o.d"
  "/root/repo/src/absort/sim/fish_hardware.cpp" "src/CMakeFiles/absort.dir/absort/sim/fish_hardware.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sim/fish_hardware.cpp.o.d"
  "/root/repo/src/absort/sim/trace.cpp" "src/CMakeFiles/absort.dir/absort/sim/trace.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sim/trace.cpp.o.d"
  "/root/repo/src/absort/sorters/alt_oem.cpp" "src/CMakeFiles/absort.dir/absort/sorters/alt_oem.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/alt_oem.cpp.o.d"
  "/root/repo/src/absort/sorters/batcher_oem.cpp" "src/CMakeFiles/absort.dir/absort/sorters/batcher_oem.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/batcher_oem.cpp.o.d"
  "/root/repo/src/absort/sorters/bitonic.cpp" "src/CMakeFiles/absort.dir/absort/sorters/bitonic.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/bitonic.cpp.o.d"
  "/root/repo/src/absort/sorters/carrying.cpp" "src/CMakeFiles/absort.dir/absort/sorters/carrying.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/carrying.cpp.o.d"
  "/root/repo/src/absort/sorters/columnsort.cpp" "src/CMakeFiles/absort.dir/absort/sorters/columnsort.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/columnsort.cpp.o.d"
  "/root/repo/src/absort/sorters/fish_sorter.cpp" "src/CMakeFiles/absort.dir/absort/sorters/fish_sorter.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/fish_sorter.cpp.o.d"
  "/root/repo/src/absort/sorters/hybrid_oem.cpp" "src/CMakeFiles/absort.dir/absort/sorters/hybrid_oem.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/hybrid_oem.cpp.o.d"
  "/root/repo/src/absort/sorters/muxmerge_sorter.cpp" "src/CMakeFiles/absort.dir/absort/sorters/muxmerge_sorter.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/muxmerge_sorter.cpp.o.d"
  "/root/repo/src/absort/sorters/periodic_balanced.cpp" "src/CMakeFiles/absort.dir/absort/sorters/periodic_balanced.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/periodic_balanced.cpp.o.d"
  "/root/repo/src/absort/sorters/prefix_sorter.cpp" "src/CMakeFiles/absort.dir/absort/sorters/prefix_sorter.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/prefix_sorter.cpp.o.d"
  "/root/repo/src/absort/sorters/radix_wordsort.cpp" "src/CMakeFiles/absort.dir/absort/sorters/radix_wordsort.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/radix_wordsort.cpp.o.d"
  "/root/repo/src/absort/sorters/sorter.cpp" "src/CMakeFiles/absort.dir/absort/sorters/sorter.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/sorters/sorter.cpp.o.d"
  "/root/repo/src/absort/util/bitvec.cpp" "src/CMakeFiles/absort.dir/absort/util/bitvec.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/util/bitvec.cpp.o.d"
  "/root/repo/src/absort/util/math.cpp" "src/CMakeFiles/absort.dir/absort/util/math.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/util/math.cpp.o.d"
  "/root/repo/src/absort/util/rng.cpp" "src/CMakeFiles/absort.dir/absort/util/rng.cpp.o" "gcc" "src/CMakeFiles/absort.dir/absort/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
