# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_seqclass[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_blocks[1]_include.cmake")
include("/root/repo/build/tests/test_baseline_sorters[1]_include.cmake")
include("/root/repo/build/tests/test_prefix_sorter[1]_include.cmake")
include("/root/repo/build/tests/test_muxmerge_sorter[1]_include.cmake")
include("/root/repo/build/tests/test_fish_sorter[1]_include.cmake")
include("/root/repo/build/tests/test_columnsort[1]_include.cmake")
include("/root/repo/build/tests/test_concentrator[1]_include.cmake")
include("/root/repo/build/tests/test_permuters[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_netlist_tools[1]_include.cmake")
include("/root/repo/build/tests/test_more_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_sorter_properties[1]_include.cmake")
include("/root/repo/build/tests/test_fish_hardware[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_selfrouting[1]_include.cmake")
include("/root/repo/build/tests/test_serialize_trace[1]_include.cmake")
include("/root/repo/build/tests/test_optimize[1]_include.cmake")
include("/root/repo/build/tests/test_batcher_banyan[1]_include.cmake")
include("/root/repo/build/tests/test_sim_misc[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid_oem[1]_include.cmake")
