# Empty dependencies file for test_permuters.
# This may be replaced when dependencies are built.
