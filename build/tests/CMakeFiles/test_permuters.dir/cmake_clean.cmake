file(REMOVE_RECURSE
  "CMakeFiles/test_permuters.dir/test_permuters.cpp.o"
  "CMakeFiles/test_permuters.dir/test_permuters.cpp.o.d"
  "test_permuters"
  "test_permuters.pdb"
  "test_permuters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_permuters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
