# Empty dependencies file for test_hybrid_oem.
# This may be replaced when dependencies are built.
