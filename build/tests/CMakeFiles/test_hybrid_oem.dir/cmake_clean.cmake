file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_oem.dir/test_hybrid_oem.cpp.o"
  "CMakeFiles/test_hybrid_oem.dir/test_hybrid_oem.cpp.o.d"
  "test_hybrid_oem"
  "test_hybrid_oem.pdb"
  "test_hybrid_oem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_oem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
