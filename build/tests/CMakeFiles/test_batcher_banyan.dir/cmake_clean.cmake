file(REMOVE_RECURSE
  "CMakeFiles/test_batcher_banyan.dir/test_batcher_banyan.cpp.o"
  "CMakeFiles/test_batcher_banyan.dir/test_batcher_banyan.cpp.o.d"
  "test_batcher_banyan"
  "test_batcher_banyan.pdb"
  "test_batcher_banyan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batcher_banyan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
