file(REMOVE_RECURSE
  "CMakeFiles/test_fish_sorter.dir/test_fish_sorter.cpp.o"
  "CMakeFiles/test_fish_sorter.dir/test_fish_sorter.cpp.o.d"
  "test_fish_sorter"
  "test_fish_sorter.pdb"
  "test_fish_sorter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fish_sorter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
