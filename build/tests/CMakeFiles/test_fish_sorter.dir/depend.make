# Empty dependencies file for test_fish_sorter.
# This may be replaced when dependencies are built.
