# Empty compiler generated dependencies file for test_netlist_tools.
# This may be replaced when dependencies are built.
