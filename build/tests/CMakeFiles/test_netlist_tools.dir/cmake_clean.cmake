file(REMOVE_RECURSE
  "CMakeFiles/test_netlist_tools.dir/test_netlist_tools.cpp.o"
  "CMakeFiles/test_netlist_tools.dir/test_netlist_tools.cpp.o.d"
  "test_netlist_tools"
  "test_netlist_tools.pdb"
  "test_netlist_tools[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
