# Empty dependencies file for test_seqclass.
# This may be replaced when dependencies are built.
