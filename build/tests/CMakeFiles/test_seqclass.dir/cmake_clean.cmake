file(REMOVE_RECURSE
  "CMakeFiles/test_seqclass.dir/test_seqclass.cpp.o"
  "CMakeFiles/test_seqclass.dir/test_seqclass.cpp.o.d"
  "test_seqclass"
  "test_seqclass.pdb"
  "test_seqclass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seqclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
