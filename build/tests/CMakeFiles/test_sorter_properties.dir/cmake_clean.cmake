file(REMOVE_RECURSE
  "CMakeFiles/test_sorter_properties.dir/test_sorter_properties.cpp.o"
  "CMakeFiles/test_sorter_properties.dir/test_sorter_properties.cpp.o.d"
  "test_sorter_properties"
  "test_sorter_properties.pdb"
  "test_sorter_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sorter_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
