file(REMOVE_RECURSE
  "CMakeFiles/test_serialize_trace.dir/test_serialize_trace.cpp.o"
  "CMakeFiles/test_serialize_trace.dir/test_serialize_trace.cpp.o.d"
  "test_serialize_trace"
  "test_serialize_trace.pdb"
  "test_serialize_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serialize_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
