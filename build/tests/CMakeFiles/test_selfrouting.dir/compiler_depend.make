# Empty compiler generated dependencies file for test_selfrouting.
# This may be replaced when dependencies are built.
