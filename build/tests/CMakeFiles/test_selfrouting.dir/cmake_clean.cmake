file(REMOVE_RECURSE
  "CMakeFiles/test_selfrouting.dir/test_selfrouting.cpp.o"
  "CMakeFiles/test_selfrouting.dir/test_selfrouting.cpp.o.d"
  "test_selfrouting"
  "test_selfrouting.pdb"
  "test_selfrouting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selfrouting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
