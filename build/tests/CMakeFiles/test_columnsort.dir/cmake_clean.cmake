file(REMOVE_RECURSE
  "CMakeFiles/test_columnsort.dir/test_columnsort.cpp.o"
  "CMakeFiles/test_columnsort.dir/test_columnsort.cpp.o.d"
  "test_columnsort"
  "test_columnsort.pdb"
  "test_columnsort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_columnsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
