# Empty dependencies file for test_columnsort.
# This may be replaced when dependencies are built.
