# Empty compiler generated dependencies file for test_muxmerge_sorter.
# This may be replaced when dependencies are built.
