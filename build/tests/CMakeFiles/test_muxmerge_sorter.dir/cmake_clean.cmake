file(REMOVE_RECURSE
  "CMakeFiles/test_muxmerge_sorter.dir/test_muxmerge_sorter.cpp.o"
  "CMakeFiles/test_muxmerge_sorter.dir/test_muxmerge_sorter.cpp.o.d"
  "test_muxmerge_sorter"
  "test_muxmerge_sorter.pdb"
  "test_muxmerge_sorter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_muxmerge_sorter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
