file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_sorters.dir/test_baseline_sorters.cpp.o"
  "CMakeFiles/test_baseline_sorters.dir/test_baseline_sorters.cpp.o.d"
  "test_baseline_sorters"
  "test_baseline_sorters.pdb"
  "test_baseline_sorters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_sorters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
