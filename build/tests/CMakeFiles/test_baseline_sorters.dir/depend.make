# Empty dependencies file for test_baseline_sorters.
# This may be replaced when dependencies are built.
