file(REMOVE_RECURSE
  "CMakeFiles/test_fish_hardware.dir/test_fish_hardware.cpp.o"
  "CMakeFiles/test_fish_hardware.dir/test_fish_hardware.cpp.o.d"
  "test_fish_hardware"
  "test_fish_hardware.pdb"
  "test_fish_hardware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fish_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
