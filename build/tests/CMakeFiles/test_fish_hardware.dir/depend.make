# Empty dependencies file for test_fish_hardware.
# This may be replaced when dependencies are built.
