file(REMOVE_RECURSE
  "CMakeFiles/test_prefix_sorter.dir/test_prefix_sorter.cpp.o"
  "CMakeFiles/test_prefix_sorter.dir/test_prefix_sorter.cpp.o.d"
  "test_prefix_sorter"
  "test_prefix_sorter.pdb"
  "test_prefix_sorter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefix_sorter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
