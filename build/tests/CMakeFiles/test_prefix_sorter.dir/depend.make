# Empty dependencies file for test_prefix_sorter.
# This may be replaced when dependencies are built.
