# Empty compiler generated dependencies file for absort_cli.
# This may be replaced when dependencies are built.
