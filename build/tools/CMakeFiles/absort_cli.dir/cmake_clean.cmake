file(REMOVE_RECURSE
  "CMakeFiles/absort_cli.dir/absort_cli.cpp.o"
  "CMakeFiles/absort_cli.dir/absort_cli.cpp.o.d"
  "absort_cli"
  "absort_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absort_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
