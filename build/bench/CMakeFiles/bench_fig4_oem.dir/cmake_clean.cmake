file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_oem.dir/bench_fig4_oem.cpp.o"
  "CMakeFiles/bench_fig4_oem.dir/bench_fig4_oem.cpp.o.d"
  "bench_fig4_oem"
  "bench_fig4_oem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_oem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
