file(REMOVE_RECURSE
  "CMakeFiles/bench_columnsort.dir/bench_columnsort.cpp.o"
  "CMakeFiles/bench_columnsort.dir/bench_columnsort.cpp.o.d"
  "bench_columnsort"
  "bench_columnsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_columnsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
