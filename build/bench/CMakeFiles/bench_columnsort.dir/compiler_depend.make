# Empty compiler generated dependencies file for bench_columnsort.
# This may be replaced when dependencies are built.
