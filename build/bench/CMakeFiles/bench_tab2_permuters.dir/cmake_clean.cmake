file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_permuters.dir/bench_tab2_permuters.cpp.o"
  "CMakeFiles/bench_tab2_permuters.dir/bench_tab2_permuters.cpp.o.d"
  "bench_tab2_permuters"
  "bench_tab2_permuters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_permuters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
