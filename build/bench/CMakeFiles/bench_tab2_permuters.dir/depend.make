# Empty dependencies file for bench_tab2_permuters.
# This may be replaced when dependencies are built.
