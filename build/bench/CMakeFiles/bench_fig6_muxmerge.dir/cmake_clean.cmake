file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_muxmerge.dir/bench_fig6_muxmerge.cpp.o"
  "CMakeFiles/bench_fig6_muxmerge.dir/bench_fig6_muxmerge.cpp.o.d"
  "bench_fig6_muxmerge"
  "bench_fig6_muxmerge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_muxmerge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
