file(REMOVE_RECURSE
  "CMakeFiles/bench_concentrator.dir/bench_concentrator.cpp.o"
  "CMakeFiles/bench_concentrator.dir/bench_concentrator.cpp.o.d"
  "bench_concentrator"
  "bench_concentrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concentrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
