# Empty compiler generated dependencies file for bench_concentrator.
# This may be replaced when dependencies are built.
