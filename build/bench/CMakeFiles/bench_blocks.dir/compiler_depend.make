# Empty compiler generated dependencies file for bench_blocks.
# This may be replaced when dependencies are built.
