# Empty dependencies file for bench_fig5_prefix.
# This may be replaced when dependencies are built.
