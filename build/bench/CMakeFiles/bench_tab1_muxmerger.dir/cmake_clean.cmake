file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_muxmerger.dir/bench_tab1_muxmerger.cpp.o"
  "CMakeFiles/bench_tab1_muxmerger.dir/bench_tab1_muxmerger.cpp.o.d"
  "bench_tab1_muxmerger"
  "bench_tab1_muxmerger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_muxmerger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
