# Empty dependencies file for bench_tab1_muxmerger.
# This may be replaced when dependencies are built.
