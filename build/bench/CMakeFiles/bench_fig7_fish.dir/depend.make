# Empty dependencies file for bench_fig7_fish.
# This may be replaced when dependencies are built.
