file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fish.dir/bench_fig7_fish.cpp.o"
  "CMakeFiles/bench_fig7_fish.dir/bench_fig7_fish.cpp.o.d"
  "bench_fig7_fish"
  "bench_fig7_fish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
