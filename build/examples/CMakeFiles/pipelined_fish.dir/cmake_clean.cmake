file(REMOVE_RECURSE
  "CMakeFiles/pipelined_fish.dir/pipelined_fish.cpp.o"
  "CMakeFiles/pipelined_fish.dir/pipelined_fish.cpp.o.d"
  "pipelined_fish"
  "pipelined_fish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelined_fish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
