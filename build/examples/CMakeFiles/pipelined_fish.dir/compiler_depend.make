# Empty compiler generated dependencies file for pipelined_fish.
# This may be replaced when dependencies are built.
