# Empty dependencies file for concentrator_demo.
# This may be replaced when dependencies are built.
