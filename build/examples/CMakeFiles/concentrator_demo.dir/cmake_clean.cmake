file(REMOVE_RECURSE
  "CMakeFiles/concentrator_demo.dir/concentrator_demo.cpp.o"
  "CMakeFiles/concentrator_demo.dir/concentrator_demo.cpp.o.d"
  "concentrator_demo"
  "concentrator_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concentrator_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
