# Empty dependencies file for verify_paper.
# This may be replaced when dependencies are built.
