file(REMOVE_RECURSE
  "CMakeFiles/verify_paper.dir/verify_paper.cpp.o"
  "CMakeFiles/verify_paper.dir/verify_paper.cpp.o.d"
  "verify_paper"
  "verify_paper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
