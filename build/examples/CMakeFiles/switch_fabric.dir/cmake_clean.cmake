file(REMOVE_RECURSE
  "CMakeFiles/switch_fabric.dir/switch_fabric.cpp.o"
  "CMakeFiles/switch_fabric.dir/switch_fabric.cpp.o.d"
  "switch_fabric"
  "switch_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
