file(REMOVE_RECURSE
  "CMakeFiles/permutation_router.dir/permutation_router.cpp.o"
  "CMakeFiles/permutation_router.dir/permutation_router.cpp.o.d"
  "permutation_router"
  "permutation_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permutation_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
