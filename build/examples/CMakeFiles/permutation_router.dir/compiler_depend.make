# Empty compiler generated dependencies file for permutation_router.
# This may be replaced when dependencies are built.
