// A complete packet-switch fabric tour: the same cell slot routed by three
// architectures built from this library's parts.
//
//   $ ./examples/switch_fabric [n]
//
// Scenario: an n-port cell switch; in one slot a subset of ports have cells
// for distinct output ports (a partial permutation).  We route it with:
//   1. Batcher-banyan: word-sort by destination + banyan fabric (the classic
//      "routing as sorting" architecture the paper's introduction invokes);
//   2. concentrate-then-permute: a fish-sorter concentrator packs the cells,
//      then the radix permuter of Fig. 10 delivers them;
//   3. rank-and-route: the ranking-tree concentrator baseline of Section IV.
// and compare the hardware each needs.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "absort/networks/batcher_banyan.hpp"
#include "absort/networks/concentrator.hpp"
#include "absort/networks/radix_permuter.hpp"
#include "absort/networks/rank_concentrator.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"

using namespace absort;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;
  if (!is_pow2(n) || n < 8) {
    std::fprintf(stderr, "usage: %s [n]   (power of two >= 8)\n", argv[0]);
    return 1;
  }
  const auto unit = netlist::CostModel::paper_unit();
  Xoshiro256 rng(2401);

  // One slot's traffic: ~2/3 of ports have a cell, destinations distinct.
  std::vector<std::optional<std::size_t>> dest(n);
  const auto outs = workload::random_permutation(rng, n);
  std::size_t cells = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.biased_bit(2, 3)) dest[i] = outs[cells++];
  }
  std::printf("slot: %zu cells on %zu ports\n\n", cells, n);

  // 1. Batcher-banyan.
  networks::BatcherBanyan bb(n);
  const auto bb_out = bb.route(dest);
  bool ok1 = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (dest[i]) ok1 &= bb_out[*dest[i]] == i;
  }
  const auto bbr = bb.cost_report();
  std::printf("Batcher-banyan:          %s; cost %8.0f (word sorter dominates)\n",
              ok1 ? "all cells delivered" : "FAILED", bbr.cost);

  // 2. concentrate (fish) + radix permuter.
  networks::Concentrator conc(sorters::FishSorter::make(n));
  networks::RadixPermuter perm(n, [](std::size_t w) -> std::unique_ptr<sorters::BinarySorter> {
    if (w >= 8) return sorters::FishSorter::make(w);
    return sorters::MuxMergeSorter::make(w);
  });
  std::vector<bool> active(n);
  for (std::size_t i = 0; i < n; ++i) active[i] = dest[i].has_value();
  const auto trunks = conc.concentrate(active);  // input index per trunk
  // Build the full permutation: trunk j's cell goes to its destination; idle
  // trunks fill the unused outputs.
  std::vector<std::size_t> full(n);
  std::vector<bool> used(n, false);
  for (std::size_t j = 0; j < cells; ++j) {
    full[j] = *dest[trunks[j]];
    used[full[j]] = true;
  }
  std::size_t fill = 0;
  for (std::size_t j = cells; j < n; ++j) {
    while (used[fill]) ++fill;
    full[j] = fill;
    used[fill] = true;
  }
  const auto arrangement = perm.route(full);
  bool ok2 = true;
  for (std::size_t j = 0; j < cells; ++j) {
    ok2 &= trunks[arrangement[*dest[trunks[j]]]] == trunks[j];
  }
  sorters::FishSorter fish(n, sorters::FishSorter::default_k(n));
  const double cost2 = fish.cost_report(unit).cost + perm.cost_report(unit).cost;
  std::printf("concentrate+permute:     %s; cost %8.0f (fish conc + Fig. 10 permuter)\n",
              ok2 ? "all cells delivered" : "FAILED", cost2);

  // 3. ranking-tree concentrator (delivery to ranks only, for comparison).
  networks::RankConcentrator rank(n);
  const auto ranked = rank.concentrate(active);
  bool ok3 = ranked.size() == cells;
  std::size_t j = 0;
  for (std::size_t i = 0; i < n && ok3; ++i) {
    if (active[i]) ok3 &= ranked[j++] == i;
  }
  std::printf("rank-and-route conc.:    %s; cost %8.0f (O(n lg^2 n) ranking tree)\n",
              ok3 ? "cells concentrated" : "FAILED", rank.cost_report(unit).cost);

  std::printf("\nthe paper's pitch in one line: replacing sorting/ranking hardware with\n"
              "adaptive *binary* sorters is what makes architecture 2 the cheap one.\n");
  return (ok1 && ok2 && ok3) ? 0 : 2;
}
