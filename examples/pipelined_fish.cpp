// Model-B walkthrough: the fish sorter's clocked schedule, with and without
// pipelining (Section III.C, Fig. 7).
//
//   $ ./examples/pipelined_fish [n] [k]
//
// Prints the step-by-step schedule of one sort -- the k groups streaming
// through the single n/k-input sorter, then the k-way merger's levels -- and
// the resulting sorting times, reproducing the O(lg^3 n) -> O(lg^2 n)
// pipelining gain of eqs. (24)-(26).

#include <cstdio>
#include <cstdlib>

#include "absort/sorters/fish_sorter.hpp"
#include "absort/util/rng.hpp"

using namespace absort;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const std::size_t k =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : sorters::FishSorter::default_k(n);
  sorters::FishSorter fish(n, k);

  Xoshiro256 rng(3);
  const auto input = workload::random_bits(rng, n);
  const auto output = fish.sort(input);
  std::printf("fish sorter, n = %zu, k = %zu groups of %zu\n", n, k, n / k);
  std::printf("input : %s\noutput: %s (%s)\n\n", input.str(n / k).c_str(),
              output.str(n / k).c_str(),
              output.is_sorted_ascending() ? "sorted" : "NOT SORTED -- bug");

  for (bool pipelined : {false, true}) {
    const auto sched = fish.schedule(pipelined);
    std::printf("---- %s schedule (unit gate delays) ----\n",
                pipelined ? "pipelined" : "unpipelined");
    std::size_t shown = 0;
    for (const auto& step : sched.steps()) {
      if (shown++ > 24) {
        std::printf("  ... (%zu more steps)\n", sched.steps().size() - shown + 1);
        break;
      }
      std::printf("  [%6.0f -> %6.0f] %s\n", step.start, step.finish, step.label.c_str());
    }
    std::printf("  critical path: %.0f unit delays\n\n", sched.critical_path());
  }

  const auto t = fish.timing();
  std::printf("sorting time: %.0f unpipelined vs %.0f pipelined (%.2fx gain)\n",
              t.total_unpipelined, t.total_pipelined, t.total_unpipelined / t.total_pipelined);
  std::printf("(the columnsort alternative must pipeline each of its four sorting passes\n"
              " separately; the fish sorter streams through a single small sorter)\n");
  return output.is_sorted_ascending() ? 0 : 2;
}
