// Quickstart: build each adaptive binary sorting network, sort a sequence,
// inspect cost/depth, and move payload packets with the routing face.
//
//   $ ./examples/quickstart [n]
//
// This walks through the library's three "faces" on one input:
//  (a) the netlist face -- an explicit circuit whose unit cost/depth are the
//      quantities the paper's equations describe,
//  (b) the value face -- fast simulation that matches the netlist bit for bit,
//  (c) the routing face -- the network *carrying* packets, which is what the
//      concentrators and permutation networks of Section IV build on.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "absort/netlist/analyze.hpp"
#include "absort/util/math.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/rng.hpp"

using namespace absort;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;
  if (!is_pow2(n) || n < 8) {
    std::fprintf(stderr, "usage: %s [n]   (n a power of two >= 8)\n", argv[0]);
    return 1;
  }
  const auto unit = netlist::CostModel::paper_unit();

  Xoshiro256 rng(2026);
  const auto input = workload::random_bits(rng, n);
  std::printf("input : %s  (%zu ones)\n\n", input.str(8).c_str(), input.count_ones());

  std::unique_ptr<sorters::BinarySorter> nets[] = {
      sorters::BatcherOemSorter::make(n),  // nonadaptive baseline
      sorters::PrefixSorter::make(n),      // Network 1
      sorters::MuxMergeSorter::make(n),    // Network 2
      sorters::FishSorter::make(n),        // Network 3 (model B)
  };

  for (const auto& net : nets) {
    const auto sorted = net->sort(input);
    const auto r = net->cost_report(unit);
    std::printf("%-12s -> %s\n", net->name().c_str(), sorted.str(8).c_str());
    std::printf("             unit cost %.0f, depth %.0f, sorting time %.0f%s\n", r.cost, r.depth,
                net->sorting_time(unit), net->is_combinational() ? "" : " (time-multiplexed)");
    if (!sorted.is_sorted_ascending()) {
      std::fprintf(stderr, "BUG: %s failed to sort\n", net->name().c_str());
      return 2;
    }
  }

  // The routing face: carry named packets, tagged 0 = wants the front.
  std::printf("\ncarrying packets through the mux-merger sorter:\n");
  sorters::MuxMergeSorter carrier(16);
  BitVec tags(16);
  std::vector<std::string> packets;
  for (std::size_t i = 0; i < 16; ++i) {
    tags[i] = static_cast<Bit>(i % 3 == 0 ? 0 : 1);
    packets.push_back((tags[i] ? "idle" : "DATA") + std::to_string(i));
  }
  const auto arranged = carrier.carry(tags, packets);
  std::printf("  front of the output bundle:");
  for (std::size_t i = 0; i < 6; ++i) std::printf(" %s", arranged[i].c_str());
  std::printf("\n");
  return 0;
}
