// Concentrator demo (Section IV): a switch fabric concentrating the active
// requests of n ports onto m output trunks.
//
//   $ ./examples/concentrator_demo [n] [m]
//
// Scenario: an n-port packet switch where at most m ports are granted in a
// cycle.  Tagging granted ports 0 and idle ports 1, one pass through a
// binary sorter moves every granted packet to the first outputs -- this is
// the paper's (n, m)-concentrator.  We compare the engines' hardware costs
// and show packets riding the network.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "absort/netlist/analyze.hpp"
#include "absort/util/math.hpp"
#include "absort/networks/concentrator.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/rng.hpp"

using namespace absort;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const std::size_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : n / 2;
  if (!is_pow2(n) || n < 16 || m > n) {
    std::fprintf(stderr, "usage: %s [n] [m<=n]   (n a power of two >= 16)\n", argv[0]);
    return 1;
  }

  const auto unit = netlist::CostModel::paper_unit();
  std::printf("(%zu, %zu)-concentrator engines:\n", n, m);
  struct Engine {
    const char* label;
    std::unique_ptr<sorters::BinarySorter> sorter;
  };
  Engine engines[] = {{"batcher (nonadaptive)", sorters::BatcherOemSorter::make(n)},
                      {"mux-merger (Network 2)", sorters::MuxMergeSorter::make(n)},
                      {"fish (Network 3)", sorters::FishSorter::make(n)}};
  for (auto& e : engines) {
    const auto r = e.sorter->cost_report(unit);
    std::printf("  %-24s cost %8.0f (%.2f units/port), concentration time %5.0f\n", e.label,
                r.cost, r.cost / double(n), e.sorter->sorting_time(unit));
  }

  // Route a random grant pattern through the fish-based concentrator.
  networks::Concentrator fabric(sorters::FishSorter::make(n), m);
  Xoshiro256 rng(7);
  std::vector<bool> granted(n, false);
  std::vector<std::string> packets(n);
  std::size_t r = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (r < m && rng.biased_bit(1, 3)) {
      granted[i] = true;
      ++r;
    }
    packets[i] = granted[i] ? ("P" + std::to_string(i)) : "-";
  }
  const auto trunks = fabric.concentrate_packets(granted, packets);
  std::printf("\n%zu granted ports of %zu concentrated onto trunks 0..%zu:\n  ", r, n, r - 1);
  for (std::size_t j = 0; j < r; ++j) std::printf("%s ", trunks[j].c_str());
  std::printf("\n");

  bool ok = true;
  for (std::size_t j = 0; j < r; ++j) ok &= trunks[j][0] == 'P';
  std::printf("all granted packets on the first %zu trunks: %s\n", r, ok ? "yes" : "NO (bug!)");
  return ok ? 0 : 2;
}
