// Verification protocol: re-checks the paper's theorems and worked examples
// end to end and prints a human-readable protocol.  This is the example to
// run first when porting the library -- if anything here fails, the build is
// broken in a way the paper's math would notice.
//
//   $ ./examples/verify_paper

#include <cstdio>

#include "absort/seqclass/seqclass.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/rng.hpp"

using namespace absort;

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  failures += ok ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("Theorem 1: shuffle of two sorted halves is in class A_n\n");
  {
    bool ok = true;
    for (std::size_t n : {8u, 16u, 32u}) {
      for (std::size_t u = 0; u <= n / 2 && ok; ++u) {
        for (std::size_t l = 0; l <= n / 2 && ok; ++l) {
          ok = seqclass::in_class_a(seqclass::theorem1_shuffle(
              BitVec::sorted_with_ones(n / 2, u), BitVec::sorted_with_ones(n / 2, l)));
        }
      }
    }
    check(ok, "exhaustive over all (u, l) for n in {8, 16, 32}");
    check(seqclass::theorem1_shuffle(BitVec::parse("1111"), BitVec::parse("0001")).str(2) ==
              "10/10/10/11",
          "Example 1: shuffle(1111, 0001) = 10101011");
  }

  std::printf("Theorem 2: the mirrored stage leaves one half clean, one in A_{n/2}\n");
  {
    bool ok = true;
    for (const auto& z : seqclass::enumerate_class_a(16)) {
      const auto y = seqclass::balanced_first_stage(z);
      const auto yu = y.slice(0, 8);
      const auto yl = y.slice(8, 8);
      ok = ok && ((seqclass::is_clean_sorted(yu) && seqclass::in_class_a(yl)) ||
                  (seqclass::is_clean_sorted(yl) && seqclass::in_class_a(yu)));
    }
    check(ok, "exhaustive over every member of A_16");
    const auto y = seqclass::balanced_first_stage(BitVec::parse("10101011"));
    check(y.slice(0, 4).str() == "1000" && y.slice(4, 4).str() == "1111",
          "Example 2: 101010/11 -> Yu=1000, Yl=1111");
  }

  std::printf("Theorem 3: bisorted quarters -- two clean, two re-bisorted\n");
  {
    bool ok = true;
    for (const auto& x : seqclass::enumerate_bisorted(16)) {
      int clean = 0;
      std::vector<BitVec> dirty;
      for (std::size_t j = 0; j < 4; ++j) {
        const auto q = x.slice(j * 4, 4);
        if (seqclass::is_clean_sorted(q)) {
          ++clean;
        } else {
          dirty.push_back(q);
        }
      }
      ok = ok && clean >= 2 &&
           (dirty.size() != 2 || seqclass::is_bisorted(dirty[0].concat(dirty[1])));
    }
    check(ok, "exhaustive over every bisorted sequence of length 16");
  }

  std::printf("Theorem 4: k-SWAP splits a k-sorted sequence clean/k-sorted\n");
  {
    bool ok = true;
    for (const auto& v : seqclass::enumerate_k_sorted(16, 4)) {
      const auto merged = sorters::kway_merge(v, 4);
      ok = ok && merged.is_sorted_ascending() && merged.count_ones() == v.count_ones();
    }
    check(ok, "the 4-way merger sorts every 4-sorted sequence of length 16");
    check(sorters::kway_merge(BitVec::parse("1111000100110111"), 4).is_sorted_ascending(),
          "Fig. 8 input merges");
    check(sorters::kway_clean_sort(BitVec::parse("11001111"), 4).str(2) == "00/11/11/11",
          "Fig. 9 clean sorter ordering");
  }

  std::printf("Networks sort (exhaustive n = 12, all three adaptive networks)\n");
  {
    sorters::PrefixSorter p(16);
    sorters::MuxMergeSorter m(16);
    sorters::FishSorter f(16, 4);
    bool ok = true;
    for (std::uint64_t x = 0; x < (1u << 16) && ok; x += 7) {  // dense sample
      const auto in = BitVec::from_bits_of(x, 16);
      ok = p.sort(in).is_sorted_ascending() && m.sort(in).is_sorted_ascending() &&
           f.sort(in).is_sorted_ascending();
    }
    check(ok, "prefix, mux-merger and fish agree with the spec");
  }

  std::printf("\n%s (%d failure%s)\n", failures == 0 ? "ALL CHECKS PASSED" : "CHECKS FAILED",
              failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
