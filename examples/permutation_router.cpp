// Permutation routing demo (Section IV, Fig. 10, Table II): realize an
// arbitrary processor-to-memory permutation on (a) the radix permuter built
// from adaptive binary sorters and (b) the Benes network baseline.
//
//   $ ./examples/permutation_router [n]
//
// Scenario: n processors issue one memory request each, to distinct banks --
// a permutation.  The radix permuter self-routes level by level on the
// destination-address bits; the Benes network needs the looping algorithm to
// precompute its switch settings.

#include <cstdio>
#include <cstdlib>

#include "absort/netlist/analyze.hpp"
#include "absort/networks/benes.hpp"
#include "absort/util/math.hpp"
#include "absort/networks/radix_permuter.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/rng.hpp"

using namespace absort;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  if (!is_pow2(n) || n < 8) {
    std::fprintf(stderr, "usage: %s [n]   (n a power of two >= 8)\n", argv[0]);
    return 1;
  }
  const auto unit = netlist::CostModel::paper_unit();
  Xoshiro256 rng(11);
  const auto dest = workload::random_permutation(rng, n);

  // (a) radix permuter with fish sorters (packet-switched, O(n lg n) cost).
  networks::RadixPermuter fish_rp(n, [](std::size_t w) -> std::unique_ptr<sorters::BinarySorter> {
    if (w >= 8) return sorters::FishSorter::make(w);
    return sorters::MuxMergeSorter::make(w);
  });
  std::vector<int> payload(n);
  for (std::size_t i = 0; i < n; ++i) payload[i] = static_cast<int>(i);
  const auto routed = fish_rp.permute_packets(dest, payload);
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i) ok &= routed[dest[i]] == payload[i];
  const auto rp_cost = fish_rp.cost_report(unit);
  std::printf("radix permuter (fish engine):  %s\n", ok ? "permutation realized" : "FAILED");
  std::printf("  cost %.0f (%.2f n lg n), routing time %.0f unit delays\n", rp_cost.cost,
              rp_cost.cost / (double(n) * lg(double(n))), fish_rp.routing_time(unit));

  // (b) Benes baseline: looping algorithm + switch settings.
  networks::BenesNetwork benes(n);
  const auto controls = benes.compute_controls(dest);
  const auto circuit = benes.build_circuit();
  // Verify with one-hot probes on a few inputs.
  bool benes_ok = true;
  for (std::size_t probe = 0; probe < std::min<std::size_t>(n, 8); ++probe) {
    BitVec in(n + controls.size());
    in[probe] = 1;
    for (std::size_t c = 0; c < controls.size(); ++c) in[n + c] = controls[c];
    const auto out = circuit.eval(in);
    benes_ok &= out[dest[probe]] == 1;
  }
  const auto br = netlist::analyze_unit(circuit);
  std::printf("Benes network:                 %s\n",
              benes_ok ? "permutation realized" : "FAILED");
  std::printf("  %zu switches set by looping, cost %.0f, depth %.0f\n", controls.size(), br.cost,
              br.depth);

  std::printf("\ntrade-off: Benes has the lean datapath (cost %.0f vs %.0f) but needs the\n"
              "global looping set-up; the radix permuter self-routes from address bits\n"
              "(Table II charges Benes O(n lg^2 n) once its routing hardware is counted).\n",
              br.cost, rp_cost.cost);
  return (ok && benes_ok) ? 0 : 2;
}
