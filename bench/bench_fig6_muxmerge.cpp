// Experiment E-F6: Fig. 6 / eqs. (5)-(6) -- Network 2, the mux-merger binary
// sorter.  Measured cost must equal 4 n lg n - 7n + 7 exactly, and measured
// depth lg^2 n (documenting the paper's "D(n) = 2 lg n" misprint).

#include <cstdio>

#include "absort/analysis/formulas.hpp"
#include "absort/netlist/analyze.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

void report() {
  bench::heading("Network 2 (mux-merger sorter): measured vs paper (cost 4n lg n, depth "
                 "O(lg^2 n))");
  std::printf("%8s %12s %12s %10s | %8s %10s %14s\n", "n", "cost", "4n lg n", "cost/nlgn",
              "depth", "lg^2 n", "paper print(+)");
  for (std::size_t e = 1; e <= 13; ++e) {
    const std::size_t n = std::size_t{1} << e;
    sorters::MuxMergeSorter s(n);
    const auto r = netlist::analyze_unit(s.build_circuit());
    std::printf("%8zu %12.0f %12.0f %10.3f | %8.0f %10.0f %14.0f\n", n, r.cost,
                sorters::MuxMergeSorter::paper_cost(n),
                r.cost / (static_cast<double>(n) * lg(double(n))), r.depth,
                lg(double(n)) * lg(double(n)), 2 * lg(double(n)));
  }
  std::printf("(+) the printed \"D(n) = 2 lg n\" line; the recurrence it comes from solves to\n"
              "    Theta(lg^2 n) and the measured depth is exactly lg^2 n -- see EXPERIMENTS.md\n");
}

void BM_MuxMergeSortValue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sorters::MuxMergeSorter s(n);
  Xoshiro256 rng(8);
  auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.sort(in));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MuxMergeSortValue)->RangeMultiplier(4)->Range(64, 65536)->Complexity();

void BM_MuxMergeNetlistEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sorters::MuxMergeSorter s(n);
  const auto c = s.build_circuit();
  Xoshiro256 rng(9);
  auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.eval(in));
  }
}
BENCHMARK(BM_MuxMergeNetlistEval)->Arg(1024)->Arg(4096);

void BM_MuxMergeBuildCircuit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sorters::MuxMergeSorter s(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.build_circuit().num_components());
  }
}
BENCHMARK(BM_MuxMergeBuildCircuit)->Arg(1024)->Arg(16384);

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
