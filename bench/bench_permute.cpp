// E-P1 -- the three permuter families head-to-head through the serving
// stack: latency percentiles and goodput for permutation routing over the
// full path (framing codec -> epoll reactor -> PermuteService micro-batching
// -> waiter pool -> framing codec), measured the same two ways as the sort
// edge (bench_edge.cpp):
//
//   * closed loop: C concurrent clients, one synchronous Permute round trip
//     in flight each, destinations drawn from random cyclic shifts -- a
//     pattern family every fabric routes (verified up front), so the
//     head-to-head compares routing cost, not refusal rates.
//
//   * open loop: Poisson arrivals on one pipelined connection at a fixed
//     offered rate, a mixed destination population (80% cyclic shifts, 20%
//     uniform random permutations) and a spread of deadline budgets.
//     Random permutations keep the Unroutable path live: omega blocks most
//     of them, the rearrangeable fabrics route them all, and the refusal
//     counts land in the table -- a blocked pattern is the fabric's designed
//     answer, not an error.  Latency is measured from the *scheduled*
//     arrival (coordinated-omission correction), Ok responses only.
//
// Before any timing, a validation pass drives the same destinations through
// the edge, through direct PermuteService::submit on the same service, and
// through the host routing algorithm (Permuter::route), and insists all
// three agree -- Ok answers satisfy output_source[dest[i]] == i and match
// pairwise, and the edge reports Unroutable exactly when the host algorithm
// blocks.
//
// Writes BENCH_permute.json.  --quick runs a seconds-scale subset for ctest
// and still writes the JSON, then re-reads it and validates the schema keys
// (exit 2 on a miss) -- the smoke covers the reporting path end to end, not
// just the serving path.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "absort/edge/edge_client.hpp"
#include "absort/edge/edge_server.hpp"
#include "absort/networks/permuters.hpp"
#include "absort/service/permute_service.hpp"
#include "absort/service/sort_service.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;
using Clock = std::chrono::steady_clock;

constexpr const char* kHost = "127.0.0.1";

/// PermuteService shard count for every scenario stack (set by --shards).
std::size_t g_shards = 1;

/// Fabric size for the timed loops: 64 inputs = 6 route lanes per request on
/// the switch fabrics, big enough that routing does real work, small enough
/// that a micro-batch holds many requests.
constexpr std::size_t kBenchN = 64;

std::size_t hw_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

double uniform01(Xoshiro256& rng) { return static_cast<double>(rng() >> 11) * 0x1.0p-53; }

double us_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/// Exact order-statistic percentile of an (unsorted) latency vector.
struct Percentiles {
  double p50 = 0, p99 = 0, p999 = 0;
};

Percentiles exact_percentiles(std::vector<double>& lat) {
  Percentiles p;
  if (lat.empty()) return p;
  std::sort(lat.begin(), lat.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(lat.size() - 1));
    return lat[idx];
  };
  p.p50 = at(0.50);
  p.p99 = at(0.99);
  p.p999 = at(0.999);
  return p;
}

/// A cyclic shift dest[i] = (i + s) mod n.  Shifts are routable on all three
/// fabrics (omega included: a uniform-offset pattern traverses the
/// shuffle-exchange stages conflict-free), which the validation pass
/// re-verifies before any timing trusts this claim.
std::vector<std::uint16_t> cyclic_shift(std::size_t n, std::size_t s) {
  std::vector<std::uint16_t> dest(n);
  for (std::size_t i = 0; i < n; ++i) dest[i] = static_cast<std::uint16_t>((i + s) % n);
  return dest;
}

/// Uniform random permutation (Fisher-Yates); routable on the rearrangeable
/// fabrics, mostly blocked on omega.
std::vector<std::uint16_t> random_perm(Xoshiro256& rng, std::size_t n) {
  std::vector<std::uint16_t> dest(n);
  for (std::size_t i = 0; i < n; ++i) dest[i] = static_cast<std::uint16_t>(i);
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = rng() % (i + 1);
    std::swap(dest[i], dest[j]);
  }
  return dest;
}

std::uint32_t draw_deadline_us(Xoshiro256& rng) {
  // Same spread as the sort edge: half best-effort, the rest split between a
  // generous and a tight budget.
  const double v = uniform01(rng);
  return v < 0.5 ? 0 : (v < 0.8 ? 20000 : 2000);
}

/// One server stack per scenario: SortService (the edge requires one; idle
/// here) + PermuteService + EdgeServer.  Reject overflow so an overloaded
/// edge sheds explicitly instead of buffering without bound.
struct Stack {
  service::SortService svc;
  service::PermuteService psvc;
  edge::EdgeServer server;

  Stack()
      : svc(),
        psvc([] {
          service::PermuteOptions po;
          po.max_linger = std::chrono::microseconds(200);
          po.overflow = service::PermuteOptions::Overflow::Reject;
          po.shards = g_shards;
          return po;
        }()),
        server(svc, psvc, [] {
          edge::EdgeOptions eo;
          eo.max_inflight_per_conn = 4096;
          return eo;
        }()) {
    server.start();
  }

  [[nodiscard]] std::size_t threads_used() const {
    const std::size_t et = psvc.options().batch.threads;
    return psvc.shard_count() * (et ? et : hw_threads());
  }
};

/// Validation pass: destinations through the edge, through direct
/// PermuteService::submit, and through the host routing algorithm
/// (Permuter::route); all three must agree.  Ok answers are verified as
/// inverses of the submitted permutation (output_source[dest[i]] == i) and
/// compared pairwise; the edge must say Unroutable exactly when the host
/// algorithm blocks.  Covers cyclic shifts (the timed population) and
/// random permutations (the refusal population) at two fabric sizes.
bool validate(Stack& stack, const std::string& family, std::size_t reps) {
  Xoshiro256 rng(0x9E41D ^ std::hash<std::string>{}(family));
  const auto ref16 = permuters::make_permuter(family, 16);
  const auto ref64 = permuters::make_permuter(family, kBenchN);
  edge::EdgeClient client;
  client.connect(kHost, stack.server.port());

  for (std::size_t i = 0; i < reps; ++i) {
    const std::size_t n = (i % 2 == 0) ? 16 : kBenchN;
    permuters::Permuter& ref = (n == 16) ? *ref16 : *ref64;
    // Alternate the populations the timed loops use: shifts (always
    // routable) and random permutations (omega mostly blocks).
    const std::vector<std::uint16_t> dest =
        (i % 3 != 2) ? cyclic_shift(n, rng() % n) : random_perm(rng, n);

    std::vector<std::size_t> wide(dest.begin(), dest.end());
    const bool routable = ref.route(wide).has_value();

    const auto via_edge = client.permute(family, dest);
    std::vector<std::uint32_t> dest32(dest.begin(), dest.end());
    const auto direct = stack.psvc.submit(family, std::move(dest32)).get();

    if (!routable) {
      if (via_edge.status != edge::WireStatus::Unroutable ||
          direct.status != service::Status::Unroutable) {
        std::fprintf(stderr, "E-P1: %s n=%zu host blocks but edge=%d direct=%d\n",
                     family.c_str(), n, static_cast<int>(via_edge.status),
                     static_cast<int>(direct.status));
        return false;
      }
      continue;
    }
    if (via_edge.status != edge::WireStatus::Ok || direct.status != service::Status::Ok ||
        via_edge.output_source.size() != n || direct.output_source.size() != n) {
      std::fprintf(stderr, "E-P1: %s n=%zu host routes but edge=%d direct=%d\n",
                   family.c_str(), n, static_cast<int>(via_edge.status),
                   static_cast<int>(direct.status));
      return false;
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (via_edge.output_source[dest[j]] != j ||
          direct.output_source[j] != via_edge.output_source[j]) {
        std::fprintf(stderr, "E-P1: %s n=%zu output_source mismatch at %zu\n",
                     family.c_str(), n, j);
        return false;
      }
    }
  }
  return true;
}

struct ClosedResult {
  std::string family;
  std::size_t clients = 0;
  std::size_t requests = 0;  ///< total Ok responses
  double goodput_rps = 0;
  Percentiles lat;
  std::size_t shards = 1, threads_used = 1;
};

/// Closed loop: `clients` threads, one synchronous Permute in flight each,
/// random cyclic shifts at n = kBenchN (routable on every family).
ClosedResult run_closed(Stack& stack, const std::string& family, std::size_t clients,
                        std::size_t per_client) {
  std::vector<std::vector<double>> lats(clients);
  std::vector<std::thread> threads;
  std::atomic<std::size_t> ok{0};
  const auto t0 = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Xoshiro256 rng(0xC105ED ^ (c * 0x9E37));
      edge::EdgeClient client;
      client.connect(kHost, stack.server.port());
      lats[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const auto dest = cyclic_shift(kBenchN, rng() % kBenchN);
        const auto sent = Clock::now();
        const auto resp = client.permute(family, dest);
        if (resp.status == edge::WireStatus::Ok) {
          lats[c].push_back(us_since(sent, Clock::now()));
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double secs = us_since(t0, Clock::now()) / 1e6;

  ClosedResult res;
  res.family = family;
  res.clients = clients;
  res.requests = ok.load();
  res.shards = stack.psvc.shard_count();
  res.threads_used = stack.threads_used();
  res.goodput_rps = static_cast<double>(res.requests) / secs;
  std::vector<double> all;
  for (auto& v : lats) all.insert(all.end(), v.begin(), v.end());
  res.lat = exact_percentiles(all);
  return res;
}

struct OpenResult {
  std::string family;
  double offered_rps = 0;
  std::size_t scheduled = 0;
  std::size_t ok = 0, unroutable = 0, shedded = 0, expired = 0, other = 0;
  double goodput_rps = 0;
  double duration_s = 0;
  Percentiles lat;  ///< Ok responses only, measured from scheduled arrival
  std::size_t shards = 1, threads_used = 1;
};

/// Open loop: Poisson arrivals at `offered_rps` on one pipelined connection.
/// The sender never waits for responses; a receiver thread matches them by
/// id.  Latency for each Ok response = completion - *scheduled* arrival.
OpenResult run_open(Stack& stack, const std::string& family, double offered_rps,
                    std::size_t total) {
  edge::EdgeClient client;
  client.connect(kHost, stack.server.port());

  std::mutex m;
  std::map<std::uint64_t, Clock::time_point> scheduled_at;  // id -> scheduled arrival

  OpenResult res;
  res.family = family;
  res.offered_rps = offered_rps;
  res.scheduled = total;
  res.shards = stack.psvc.shard_count();
  res.threads_used = stack.threads_used();

  std::vector<double> lats;
  lats.reserve(total);
  std::thread receiver([&] {
    edge::Response resp;
    std::size_t got = 0;
    while (got < total && client.recv(resp)) {
      const auto done = Clock::now();
      ++got;
      Clock::time_point sched;
      {
        std::lock_guard lk(m);
        const auto it = scheduled_at.find(resp.id);
        if (it == scheduled_at.end()) continue;  // unreachable: ids are ours
        sched = it->second;
        scheduled_at.erase(it);
      }
      switch (resp.status) {
        case edge::WireStatus::Ok:
          ++res.ok;
          lats.push_back(us_since(sched, done));
          break;
        case edge::WireStatus::Unroutable:
          ++res.unroutable;
          break;
        case edge::WireStatus::Shedded:
          ++res.shedded;
          break;
        case edge::WireStatus::Expired:
          ++res.expired;
          break;
        default:
          ++res.other;
          break;
      }
    }
  });

  Xoshiro256 rng(0x09E41009);
  const auto t0 = Clock::now();
  auto next = t0;
  for (std::size_t i = 0; i < total; ++i) {
    // Exponential inter-arrival on an absolute schedule: sleep_until keeps
    // the offered rate independent of how long the sends themselves take.
    const double gap_us = -std::log(1.0 - uniform01(rng)) * 1e6 / offered_rps;
    next += std::chrono::microseconds(static_cast<std::int64_t>(gap_us));
    std::this_thread::sleep_until(next);
    // 80% routable shifts, 20% random permutations (omega's refusal lane).
    const auto dest = uniform01(rng) < 0.8 ? cyclic_shift(kBenchN, rng() % kBenchN)
                                           : random_perm(rng, kBenchN);
    edge::Request req;
    req.type = edge::MessageType::Permute;
    req.id = static_cast<std::uint64_t>(i) + 1'000'000;
    req.deadline_us = draw_deadline_us(rng);
    req.sorter = family;
    req.dest = dest;
    {
      std::lock_guard lk(m);
      // Latency clock starts at the scheduled arrival `next`, even if this
      // send is late (coordinated-omission correction).
      scheduled_at.emplace(req.id, next);
    }
    client.send(req);
  }
  receiver.join();
  res.duration_s = us_since(t0, Clock::now()) / 1e6;
  res.goodput_rps = static_cast<double>(res.ok) / res.duration_s;
  res.lat = exact_percentiles(lats);
  return res;
}

void write_json(const std::vector<ClosedResult>& closed,
                const std::vector<OpenResult>& open) {
  FILE* f = std::fopen("BENCH_permute.json", "w");
  if (!f) {
    std::fprintf(stderr, "E-P1: cannot write BENCH_permute.json\n");
    std::exit(2);
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"permute_serving\",\n  \"fabric_n\": %zu,\n"
               "  \"hardware_threads\": %zu,\n  \"closed_loop\": [\n",
               kBenchN, hw_threads());
  for (std::size_t i = 0; i < closed.size(); ++i) {
    const auto& r = closed[i];
    std::fprintf(f,
                 "    {\"permuter\": \"%s\", \"clients\": %zu, \"shards\": %zu, "
                 "\"threads_used\": %zu, \"ok\": %zu, \"goodput_rps\": %.1f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}%s\n",
                 r.family.c_str(), r.clients, r.shards, r.threads_used, r.requests,
                 r.goodput_rps, r.lat.p50, r.lat.p99, r.lat.p999,
                 i + 1 < closed.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"open_loop\": [\n");
  for (std::size_t i = 0; i < open.size(); ++i) {
    const auto& r = open[i];
    std::fprintf(f,
                 "    {\"permuter\": \"%s\", \"offered_rps\": %.0f, \"shards\": %zu, "
                 "\"threads_used\": %zu, \"scheduled\": %zu, \"ok\": %zu, "
                 "\"unroutable\": %zu, \"shedded\": %zu, \"expired\": %zu, "
                 "\"goodput_rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"p999_us\": %.1f, \"duration_s\": %.2f}%s\n",
                 r.family.c_str(), r.offered_rps, r.shards, r.threads_used, r.scheduled,
                 r.ok, r.unroutable, r.shedded, r.expired, r.goodput_rps, r.lat.p50,
                 r.lat.p99, r.lat.p999, r.duration_s, i + 1 < open.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_permute.json\n");
}

/// Schema check on the emitted JSON: re-read the file and insist every
/// required key and every permuter family appears.  The --quick ctest smoke
/// runs this too, so a reporting regression (missing key, renamed field,
/// truncated write) fails tier-1 instead of silently shipping a bad file.
void check_json_schema() {
  FILE* f = std::fopen("BENCH_permute.json", "r");
  if (!f) {
    std::fprintf(stderr, "E-P1: BENCH_permute.json missing after write\n");
    std::exit(2);
  }
  std::string contents;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, got);
  std::fclose(f);

  const char* required[] = {
      "\"benchmark\": \"permute_serving\"", "\"fabric_n\"",    "\"hardware_threads\"",
      "\"closed_loop\"",                    "\"open_loop\"",   "\"permuter\"",
      "\"goodput_rps\"",                    "\"unroutable\"",  "\"p50_us\"",
      "\"p99_us\"",                         "\"p999_us\"",
  };
  bool ok = true;
  for (const char* key : required) {
    if (contents.find(key) == std::string::npos) {
      std::fprintf(stderr, "E-P1: BENCH_permute.json missing key %s\n", key);
      ok = false;
    }
  }
  for (const auto& e : permuters::registry()) {
    if (contents.find(std::string("\"") + e.name + "\"") == std::string::npos) {
      std::fprintf(stderr, "E-P1: BENCH_permute.json missing family \"%s\"\n", e.name);
      ok = false;
    }
  }
  if (!ok) std::exit(2);
  std::printf("BENCH_permute.json schema ok\n");
}

void report(bool quick) {
  std::vector<std::string> families;
  for (const auto& e : permuters::registry()) families.push_back(e.name);

  {
    Stack stack;
    for (const auto& fam : families) {
      if (!validate(stack, fam, quick ? 24 : 120)) {
        std::fprintf(stderr, "E-P1: %s edge/direct/host disagreement -- aborting\n",
                     fam.c_str());
        std::exit(2);
      }
    }
    std::printf(
        "validation: edge == direct submit == host route for %zu families "
        "(Ok inverses verified, refusals matched)\n",
        families.size());
  }

  absort::bench::heading("E-P1a: closed loop (cyclic shifts, n=64, per family)");
  std::printf("%18s %7s %9s %12s %10s %10s %10s\n", "permuter", "clients", "ok",
              "goodput r/s", "p50 us", "p99 us", "p999 us");
  std::vector<ClosedResult> closed;
  const std::size_t client_counts[] = {1, 8};
  for (const auto& fam : families) {
    for (const std::size_t c : client_counts) {
      if (quick && c > 1) continue;
      Stack stack;
      const std::size_t per_client = quick ? 40 : 1200;
      const auto r = run_closed(stack, fam, c, per_client);
      closed.push_back(r);
      std::printf("%18s %7zu %9zu %12.0f %10.0f %10.0f %10.0f\n", r.family.c_str(),
                  r.clients, r.requests, r.goodput_rps, r.lat.p50, r.lat.p99, r.lat.p999);
    }
  }

  absort::bench::heading(
      "E-P1b: open loop (Poisson, 80% shifts / 20% random perms, deadline spread)");
  std::printf("%18s %11s %7s %7s %7s %6s %7s %12s %10s %10s\n", "permuter", "offered r/s",
              "sched", "ok", "unrout", "shed", "expired", "goodput r/s", "p50 us",
              "p99 us");
  std::vector<OpenResult> open;
  const double rates[] = {500, 4000};
  for (const auto& fam : families) {
    for (const double rate : rates) {
      if (quick && rate > 500) continue;
      Stack stack;
      const auto total = static_cast<std::size_t>(quick ? 150 : rate * 2.0);
      const auto r = run_open(stack, fam, rate, total);
      open.push_back(r);
      std::printf("%18s %11.0f %7zu %7zu %7zu %6zu %7zu %12.0f %10.0f %10.0f\n",
                  r.family.c_str(), r.offered_rps, r.scheduled, r.ok, r.unroutable,
                  r.shedded, r.expired, r.goodput_rps, r.lat.p50, r.lat.p99);
    }
  }

  // Unlike the other benches, --quick still writes and then re-validates the
  // JSON: the reporting path is part of what the tier-1 smoke covers.
  write_json(closed, open);
  check_json_schema();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      g_shards = std::max<std::size_t>(1, std::strtoull(argv[++i], nullptr, 10));
    }
  }
  report(quick);
  return 0;
}
