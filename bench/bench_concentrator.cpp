// Experiment E-X3: Section IV's concentrators.  Prints the cost/time summary
// the section states ("(n,n)-concentrators with O(n lg n) cost and O(lg^2 n)
// depth; the fish binary sorter provides a time-multiplexed concentrator
// with O(n) cost and O(lg^2 n) concentration time") and times concentration.

#include <cstdio>

#include "absort/netlist/analyze.hpp"
#include "absort/networks/concentrator.hpp"
#include "absort/networks/rank_concentrator.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

void report() {
  const auto unit = netlist::CostModel::paper_unit();

  bench::heading("concentrators from binary sorters (Section IV)");
  std::printf("%12s %8s %12s %10s %14s\n", "engine", "n", "cost", "cost/n", "conc. time");
  for (std::size_t n : {1024u, 4096u}) {
    for (const char* label : {"batcher", "prefix", "mux-merger", "fish"}) {
      const auto sorter = sorters::make_sorter(label, n);
      const auto r = sorter->cost_report(unit);
      const double t = sorter->sorting_time(unit);
      std::printf("%12s %8zu %12.0f %10.2f %14.0f\n", label, n, r.cost,
                  r.cost / double(n), t);
    }
  }
  std::printf("(fish: O(n)-cost time-multiplexed concentrator with O(lg^2 n) time --\n"
              " matched only by the columnsort network, as Section IV notes)\n");

  bench::heading("ranking-tree baseline [11],[13]: rank unit + reverse banyan");
  std::printf("%8s %12s %12s %14s %14s\n", "n", "cost", "cost/nlg2n", "vs mux-merger",
              "vs fish");
  for (std::size_t n : {256u, 1024u, 4096u}) {
    const double rank = networks::RankConcentrator(n).cost_report(unit).cost;
    const double mm = sorters::make_sorter("mux-merger", n)->cost_report(unit).cost;
    const double fish = sorters::make_sorter("fish", n)->cost_report(unit).cost;
    const double l = lg(double(n));
    std::printf("%8zu %12.0f %12.3f %14.3f %14.3f\n", n, rank, rank / (double(n) * l * l),
                rank / mm, rank / fish);
  }
  std::printf("(Section IV: ranking-tree concentrators cost O(n lg^2 n); both adaptive\n"
              " sorter concentrators undercut them, the fish sorter by a growing factor)\n");

  bench::heading("concentration correctness sweep");
  Xoshiro256 rng(18);
  const std::size_t n = 256;
  networks::Concentrator con(sorters::make_sorter("fish", n));
  std::size_t ok = 0;
  const int reps = 200;
  for (int i = 0; i < reps; ++i) {
    std::vector<bool> active(n);
    std::size_t r = 0;
    for (std::size_t j = 0; j < n; ++j) {
      active[j] = rng.bit();
      r += active[j] ? 1u : 0u;
    }
    const auto perm = con.concentrate(active);
    bool good = true;
    for (std::size_t j = 0; j < r; ++j) good &= active[perm[j]];
    ok += good ? 1u : 0u;
  }
  std::printf("%zu/%d random masks concentrated correctly (n = %zu, fish engine)\n", ok, reps, n);
}

template <typename Make>
void bm_concentrate(benchmark::State& state, Make make) {
  const auto n = static_cast<std::size_t>(state.range(0));
  networks::Concentrator con(make(n));
  Xoshiro256 rng(19);
  std::vector<bool> active(n);
  for (std::size_t j = 0; j < n; ++j) active[j] = rng.bit();
  for (auto _ : state) {
    benchmark::DoNotOptimize(con.concentrate(active));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_ConcentrateBatcher(benchmark::State& s) {
  bm_concentrate(s, [](std::size_t n) { return sorters::make_sorter("batcher", n); });
}
void BM_ConcentrateMuxMerge(benchmark::State& s) {
  bm_concentrate(s, [](std::size_t n) { return sorters::make_sorter("mux-merger", n); });
}
void BM_ConcentrateFish(benchmark::State& s) {
  bm_concentrate(s, [](std::size_t n) { return sorters::make_sorter("fish", n); });
}
BENCHMARK(BM_ConcentrateBatcher)->RangeMultiplier(4)->Range(64, 16384)->Complexity();
BENCHMARK(BM_ConcentrateMuxMerge)->RangeMultiplier(4)->Range(64, 16384)->Complexity();
BENCHMARK(BM_ConcentrateFish)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
