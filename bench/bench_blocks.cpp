// Experiments E-F1/E-F2/E-F3: building blocks of Section II.
//
// Regenerates the unit cost/depth accounting of Fig. 1 (the 4-input sorting
// network), Fig. 2 (two-way and four-way swappers) and Fig. 3 (multiplexer /
// demultiplexer trees), and times netlist construction + evaluation.

#include <cstdio>

#include "absort/blocks/mux.hpp"
#include "absort/blocks/prefix_adder.hpp"
#include "absort/blocks/swapper.hpp"
#include "absort/netlist/analyze.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;
using netlist::Circuit;
using netlist::analyze_unit;

void report() {
  bench::heading("Fig. 1: 4-input sorting network (paper: cost 5, depth 3)");
  {
    sorters::BatcherOemSorter s(4);
    const auto r = analyze_unit(s.build_circuit());
    std::printf("measured: cost %.0f, depth %.0f\n", r.cost, r.depth);
  }

  bench::heading("Fig. 2(a): n-input two-way swapper (paper: cost n/2, depth 1)");
  std::printf("%8s %10s %8s\n", "n", "cost", "depth");
  for (std::size_t n : {8u, 64u, 512u, 4096u}) {
    Circuit c;
    const auto in = c.inputs(n);
    const auto ctrl = c.input();
    c.mark_outputs(blocks::two_way_swapper(c, in, ctrl));
    const auto r = analyze_unit(c);
    std::printf("%8zu %10.0f %8.0f\n", n, r.cost, r.depth);
  }

  bench::heading("Fig. 2(b): n-input four-way swapper (paper: cost n, depth 1)");
  std::printf("%8s %10s %8s\n", "n", "cost", "depth");
  for (std::size_t n : {8u, 64u, 512u, 4096u}) {
    Circuit c;
    const auto in = c.inputs(n);
    const auto s0 = c.input();
    const auto s1 = c.input();
    c.mark_outputs(blocks::four_way_swapper(c, in, s0, s1, blocks::in_swap_patterns()));
    const auto r = analyze_unit(c);
    std::printf("%8zu %10.0f %8.0f\n", n, r.cost, r.depth);
  }

  bench::heading("Fig. 3: (n,k)-multiplexer / (k,n)-demultiplexer (paper: cost n, depth lg(n/k))");
  std::printf("%8s %4s %12s %12s %12s %12s\n", "n", "k", "mux cost", "mux depth", "demux cost",
              "demux depth");
  for (auto [n, k] : {std::pair<std::size_t, std::size_t>{16, 4},
                      std::pair<std::size_t, std::size_t>{256, 16},
                      std::pair<std::size_t, std::size_t>{4096, 64}}) {
    Circuit cm;
    const auto in = cm.inputs(n);
    const auto sel = cm.inputs(ilog2(n / k));
    for (auto w : blocks::mux_nk(cm, in, k, sel)) cm.mark_output(w);
    const auto rm = analyze_unit(cm);
    Circuit cd;
    const auto din = cd.inputs(k);
    const auto dsel = cd.inputs(ilog2(n / k));
    for (auto w : blocks::demux_kn(cd, din, n, dsel)) cd.mark_output(w);
    const auto rd = analyze_unit(cd);
    std::printf("%8zu %4zu %12.0f %12.0f %12.0f %12.0f\n", n, k, rm.cost, rm.depth, rd.cost,
                rd.depth);
  }
}

void BM_BuildTwoWaySwapper(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Circuit c;
    const auto in = c.inputs(n);
    const auto ctrl = c.input();
    c.mark_outputs(blocks::two_way_swapper(c, in, ctrl));
    benchmark::DoNotOptimize(c.num_components());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BuildTwoWaySwapper)->RangeMultiplier(4)->Range(16, 16384)->Complexity();

void BM_EvalMuxTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Circuit c;
  const auto in = c.inputs(n);
  const auto sel = c.inputs(ilog2(n));
  c.mark_output(blocks::mux_tree(c, in, sel));
  Xoshiro256 rng(1);
  auto data = workload::random_bits(rng, n + ilog2(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.eval(data));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EvalMuxTree)->RangeMultiplier(4)->Range(16, 16384)->Complexity();

void BM_EvalPrefixAdder(benchmark::State& state) {
  const auto w = static_cast<std::size_t>(state.range(0));
  Circuit c;
  const auto a = c.inputs(w);
  const auto b = c.inputs(w);
  for (auto s : blocks::prefix_adder(c, a, b)) c.mark_output(s);
  Xoshiro256 rng(2);
  auto data = workload::random_bits(rng, 2 * w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.eval(data));
  }
}
BENCHMARK(BM_EvalPrefixAdder)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
