// E-B1 -- batch-evaluation throughput: per-vector levelized evaluation vs
// the bit-sliced engine (64-256 vectors per circuit walk) vs the bit-sliced
// engine sharded across the BatchRunner pool, for the paper's three adaptive
// sorters at n = 64..4096.  The report writes BENCH_batch_throughput.json
// (vectors/sec per engine) and then hands over to google-benchmark.

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/levelized.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

constexpr std::size_t kBatch = 2048;  ///< vectors per timed batch

std::vector<BitVec> make_batch(std::size_t b, std::size_t n) {
  Xoshiro256 rng(0xBEEF ^ n);
  std::vector<BitVec> batch;
  batch.reserve(b);
  for (std::size_t i = 0; i < b; ++i) batch.push_back(workload::random_bits(rng, n));
  return batch;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Row {
  const char* sorter;
  std::size_t n;
  double single_vps;
  double sliced_vps;
  double threaded_vps;
};

Row measure(const char* name, const sorters::BinarySorter& sorter, std::size_t n) {
  const auto batch = make_batch(kBatch, n);
  Row row{name, n, 0, 0, 0};

  if (sorter.is_combinational()) {
    const auto circuit = sorter.build_circuit();
    const netlist::LevelizedCircuit lc(circuit);
    // Per-vector baseline on a slice (the full batch takes minutes at
    // n = 4096); throughput extrapolates linearly.
    const std::size_t probe = std::min<std::size_t>(kBatch, n <= 256 ? 512 : 64);
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < probe; ++i) benchmark::DoNotOptimize(lc.eval(batch[i]));
    row.single_vps = static_cast<double>(probe) / seconds_since(t0);

    const netlist::BitSlicedEvaluator ev(circuit);
    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(ev.eval_batch(batch));
    row.sliced_vps = static_cast<double>(kBatch) / seconds_since(t0);

    netlist::BatchRunner runner(circuit);
    (void)runner.run(batch);  // warm the pool before timing
    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(runner.run(batch));
    row.threaded_vps = static_cast<double>(kBatch) / seconds_since(t0);
  } else {
    // Model B: per-vector value face vs the vector-sharded fallback.
    const std::size_t probe = std::min<std::size_t>(kBatch, 256);
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < probe; ++i) benchmark::DoNotOptimize(sorter.sort(batch[i]));
    row.single_vps = static_cast<double>(probe) / seconds_since(t0);
    row.sliced_vps = row.single_vps;  // no circuit to slice
    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sorter.sort_batch(batch, 0));
    row.threaded_vps = static_cast<double>(kBatch) / seconds_since(t0);
  }
  return row;
}

void report() {
  absort::bench::heading(
      "E-B1: batch throughput, per-vector vs bit-sliced vs bit-sliced+threads");
  std::printf("batch = %zu vectors, %u hardware threads\n\n", kBatch,
              std::thread::hardware_concurrency());
  std::printf("%-12s %6s %14s %14s %14s %9s %9s\n", "sorter", "n", "single v/s", "sliced v/s",
              "threaded v/s", "slice x", "thread x");

  std::vector<Row> rows;
  for (const std::size_t n : {64, 256, 1024, 4096}) {
    const struct {
      const char* name;
      std::unique_ptr<sorters::BinarySorter> sorter;
    } cases[] = {
        {"prefix", sorters::PrefixSorter::make(n)},
        {"mux-merger", sorters::MuxMergeSorter::make(n)},
        {"fish", sorters::FishSorter::make(n)},
    };
    for (const auto& c : cases) {
      const Row r = measure(c.name, *c.sorter, n);
      rows.push_back(r);
      std::printf("%-12s %6zu %14.0f %14.0f %14.0f %8.1fx %8.1fx\n", r.sorter, r.n,
                  r.single_vps, r.sliced_vps, r.threaded_vps, r.sliced_vps / r.single_vps,
                  r.threaded_vps / r.single_vps);
    }
  }

  if (FILE* f = std::fopen("BENCH_batch_throughput.json", "w")) {
    std::fprintf(f,
                 "{\n  \"benchmark\": \"batch_throughput\",\n  \"batch_size\": %zu,\n"
                 "  \"lanes_per_word\": 64,\n  \"unrolled_words\": 4,\n"
                 "  \"hardware_threads\": %u,\n  \"results\": [\n",
                 kBatch, std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"sorter\": \"%s\", \"n\": %zu, \"single_vps\": %.1f, "
                   "\"bitsliced_vps\": %.1f, \"threaded_vps\": %.1f, "
                   "\"speedup_bitsliced\": %.2f, \"speedup_threaded\": %.2f}%s\n",
                   r.sorter, r.n, r.single_vps, r.sliced_vps, r.threaded_vps,
                   r.sliced_vps / r.single_vps, r.threaded_vps / r.single_vps,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_batch_throughput.json\n");
  }
}

// google-benchmark timings for the steady-state engines at one mid size.
void BM_SingleVector(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const netlist::LevelizedCircuit lc(sorters::PrefixSorter(n).build_circuit());
  const auto batch = make_batch(64, n);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lc.eval(batch[i++ % batch.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleVector)->Arg(256)->Arg(1024);

void BM_BitSliced(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const netlist::BitSlicedEvaluator ev(sorters::PrefixSorter(n).build_circuit());
  const auto batch = make_batch(256, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.eval_batch(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_BitSliced)->Arg(256)->Arg(1024);

void BM_BatchRunner(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  netlist::BatchRunner runner(sorters::PrefixSorter(n).build_circuit());
  const auto batch = make_batch(2048, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2048);
}
BENCHMARK(BM_BatchRunner)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
