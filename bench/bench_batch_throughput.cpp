// E-B1 -- batch-evaluation throughput: per-vector levelized evaluation vs
// the SIMD-interpreted bit-sliced engine vs the native (JIT-compiled) bit-
// sliced engine vs the engine sharded across the BatchRunner pool, for the
// paper's three adaptive sorters at n = 64..4096.  Model-B sorters (fish)
// run their own bit-sliced sort_batch path, so every column is real for
// them too.  The report writes BENCH_batch_throughput.json, embedding the
// PR-1 bitsliced numbers for before/after comparison, and then hands over
// to google-benchmark.  `--quick` runs a small smoke subset (no JSON, no
// google-benchmark) for ctest, including a JIT cache-hit assertion;
// `--backend <b>` overrides the backend for the native and threaded columns
// (the interp column always runs the SIMD interpreter for comparison).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/levelized.hpp"
#include "absort/netlist/native_engine.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/rng.hpp"
#include "absort/util/wordvec.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

constexpr std::size_t kBatch = 2048;  ///< vectors per timed batch (full run)

// PR-1 bitsliced_vps per (sorter, n), from the committed
// BENCH_batch_throughput.json of the previous revision.  Model-B sorters had
// no bit-sliced path then (speedup_bitsliced == 1.00): their baseline is the
// per-vector rate.
struct Pr1Baseline {
  const char* sorter;
  std::size_t n;
  double bitsliced_vps;
};
constexpr Pr1Baseline kPr1[] = {
    {"prefix", 64, 1680495.7},   {"mux-merger", 64, 1383231.4},  {"fish", 64, 55368.8},
    {"prefix", 256, 280640.0},   {"mux-merger", 256, 431613.0},  {"fish", 256, 43592.2},
    {"prefix", 1024, 84744.0},   {"mux-merger", 1024, 102641.9}, {"fish", 1024, 10661.5},
    {"prefix", 4096, 29865.0},   {"mux-merger", 4096, 22169.3},  {"fish", 4096, 2425.0},
};

double pr1_bitsliced(const char* sorter, std::size_t n) {
  for (const auto& b : kPr1) {
    if (b.n == n && std::strcmp(b.sorter, sorter) == 0) return b.bitsliced_vps;
  }
  return 0.0;
}

std::vector<BitVec> make_batch(std::size_t b, std::size_t n) {
  Xoshiro256 rng(0xBEEF ^ n);
  std::vector<BitVec> batch;
  batch.reserve(b);
  for (std::size_t i = 0; i < b; ++i) batch.push_back(workload::random_bits(rng, n));
  return batch;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::size_t hw_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

/// Backend for the native and threaded columns (--backend overrides; the
/// interp column is always the SIMD interpreter so the comparison stands).
netlist::Backend g_backend = netlist::Backend::Native;

struct Row {
  const char* sorter;
  std::size_t n;
  double single_vps;
  double sliced_vps;     ///< SIMD interpreter
  double native_vps;     ///< JIT-compiled kernel (or whatever --backend asked for)
  double threaded_vps;   ///< BatchRunner pool on the native/--backend engine
  double jit_compile_ms; ///< wall time of the native engine's compile (cold or cached)
  netlist::Backend native_backend;  ///< what the native column actually ran
  std::size_t threads_used;  ///< workers the threaded row actually ran with
};

Row measure(const char* name, const sorters::BinarySorter& sorter, std::size_t n,
            std::size_t batch_size) {
  const auto batch = make_batch(batch_size, n);
  // The pool never runs more workers than there are 512-vector blocks (or
  // hardware threads) -- this is what the threaded row really used.
  const std::size_t blocks = (batch.size() + netlist::kBlockLanes - 1) / netlist::kBlockLanes;
  Row row{name, n,     0, 0, 0, 0, 0, netlist::Backend::Simd,
          std::max<std::size_t>(1, std::min(hw_threads(), blocks))};

  const sorters::BatchOptions interp_opts{.threads = 1, .backend = netlist::Backend::Simd};
  const sorters::BatchOptions native_opts{.threads = 1, .backend = g_backend};

  if (sorter.is_combinational()) {
    const auto circuit = sorter.build_circuit();
    const netlist::LevelizedCircuit lc(circuit);
    // Per-vector baseline on a slice (the full batch takes minutes at
    // n = 4096); throughput extrapolates linearly.
    const std::size_t probe = std::min<std::size_t>(batch_size, n <= 256 ? 512 : 64);
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < probe; ++i) benchmark::DoNotOptimize(lc.eval(batch[i]));
    row.single_vps = static_cast<double>(probe) / seconds_since(t0);

    const netlist::BitSlicedEvaluator ev(circuit, {.backend = netlist::Backend::Simd});
    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(ev.eval_batch(batch));
    row.sliced_vps = static_cast<double>(batch.size()) / seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    const netlist::BitSlicedEvaluator nev(circuit, {.backend = g_backend});
    row.jit_compile_ms = seconds_since(t0) * 1e3;
    row.native_backend = nev.backend();
    benchmark::DoNotOptimize(nev.eval_batch(batch));  // warm
    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(nev.eval_batch(batch));
    row.native_vps = static_cast<double>(batch.size()) / seconds_since(t0);

    netlist::BatchRunner runner(circuit, {.backend = g_backend});
    std::vector<BitVec> out(batch.size());
    runner.run(batch, std::span<BitVec>(out));  // warm the pool + output buffers
    t0 = std::chrono::steady_clock::now();
    runner.run(batch, std::span<BitVec>(out));
    benchmark::DoNotOptimize(out.data());
    row.threaded_vps = static_cast<double>(batch.size()) / seconds_since(t0);
  } else {
    // Model B: per-vector value face vs its bit-sliced engines.
    const std::size_t probe = std::min<std::size_t>(batch_size, 256);
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < probe; ++i) benchmark::DoNotOptimize(sorter.sort(batch[i]));
    row.single_vps = static_cast<double>(probe) / seconds_since(t0);

    std::vector<BitVec> out(batch.size());
    const auto interp = sorter.make_batch_sorter(interp_opts);
    interp->run(batch, std::span<BitVec>(out));  // warm
    t0 = std::chrono::steady_clock::now();
    interp->run(batch, std::span<BitVec>(out));
    benchmark::DoNotOptimize(out.data());
    row.sliced_vps = static_cast<double>(batch.size()) / seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    const auto native = sorter.make_batch_sorter(native_opts);
    row.jit_compile_ms = seconds_since(t0) * 1e3;
    row.native_backend = native->backend();
    native->run(batch, std::span<BitVec>(out));  // warm
    t0 = std::chrono::steady_clock::now();
    native->run(batch, std::span<BitVec>(out));
    benchmark::DoNotOptimize(out.data());
    row.native_vps = static_cast<double>(batch.size()) / seconds_since(t0);

    const auto threaded =
        sorter.make_batch_sorter(sorters::BatchOptions{.threads = 0, .backend = g_backend});
    t0 = std::chrono::steady_clock::now();
    threaded->run(batch, std::span<BitVec>(out));
    benchmark::DoNotOptimize(out.data());
    row.threaded_vps = static_cast<double>(batch.size()) / seconds_since(t0);
  }
  return row;
}

// `--quick` JIT smoke: building the same native engine twice must hit the
// kernel cache (in-process or on-disk) the second time, with no fallback.
// Skipped (trivially passing) when no toolchain is available.
bool jit_cache_smoke() {
  if (!netlist::native_toolchain_available()) {
    std::printf("jit smoke: no toolchain, native backend unavailable (skipped)\n");
    return true;
  }
  const auto circuit = sorters::make_sorter("prefix", 64)->build_circuit();
  const sorters::BatchOptions opts{.threads = 1, .backend = netlist::Backend::Native};
  const auto before = netlist::jit_counters();
  const netlist::BitSlicedEvaluator first(circuit, opts);
  const netlist::BitSlicedEvaluator second(circuit, opts);
  const auto after = netlist::jit_counters();
  const bool native = first.backend() == netlist::Backend::Native &&
                      second.backend() == netlist::Backend::Native;
  const bool hit = after.cache_hits > before.cache_hits;
  const bool clean = after.fallbacks == before.fallbacks;
  std::printf("jit smoke: backend=%s compiles+%llu cache_hits+%llu fallbacks+%llu -> %s\n",
              netlist::to_string(second.backend()),
              static_cast<unsigned long long>(after.compiles - before.compiles),
              static_cast<unsigned long long>(after.cache_hits - before.cache_hits),
              static_cast<unsigned long long>(after.fallbacks - before.fallbacks),
              native && hit && clean ? "PASS" : "FAIL");
  return native && hit && clean;
}

void report(bool quick) {
  absort::bench::heading(
      "E-B1: batch throughput, per-vector vs interp vs native JIT vs +threads");
  const std::size_t batch_size = quick ? 600 : kBatch;
  std::printf("batch = %zu vectors, %zu hardware threads, %zu SIMD lanes/pass, %zu-vector blocks%s\n",
              batch_size, hw_threads(), wordvec::kSimdLanes, netlist::kBlockLanes,
              quick ? " [quick]" : "");
  std::printf("native/threaded columns requested backend: %s (toolchain %s)\n\n",
              netlist::to_string(g_backend),
              netlist::native_toolchain_available() ? "available" : "MISSING");
  std::printf("%-12s %6s %13s %13s %13s %13s %4s %7s %7s %7s %9s\n", "sorter", "n",
              "single v/s", "interp v/s", "native v/s", "threaded v/s", "thr", "jit x",
              "thread x", "vs PR-1", "compile");

  std::vector<Row> rows;
  const auto sizes = quick ? std::vector<std::size_t>{64, 256}
                           : std::vector<std::size_t>{64, 256, 1024, 4096};
  for (const std::size_t n : sizes) {
    for (const char* name : {"prefix", "mux-merger", "fish"}) {
      const auto sorter = sorters::make_sorter(name, n);
      const Row r = measure(name, *sorter, n, batch_size);
      rows.push_back(r);
      const double pr1 = pr1_bitsliced(r.sorter, r.n);
      std::printf("%-12s %6zu %13.0f %13.0f %13.0f %13.0f %4zu %6.2fx %6.1fx %6.2fx %7.0fms\n",
                  r.sorter, r.n, r.single_vps, r.sliced_vps, r.native_vps, r.threaded_vps,
                  r.threads_used, r.native_vps / r.sliced_vps,
                  r.threaded_vps / r.single_vps, pr1 > 0 ? r.sliced_vps / pr1 : 0.0,
                  r.jit_compile_ms);
    }
  }
  if (quick) return;  // smoke mode: no JSON, numbers are not steady-state

  if (FILE* f = std::fopen("BENCH_batch_throughput.json", "w")) {
    std::fprintf(f,
                 "{\n  \"benchmark\": \"batch_throughput\",\n  \"batch_size\": %zu,\n"
                 "  \"simd_lanes\": %zu,\n  \"block_lanes\": %zu,\n"
                 "  \"hardware_threads\": %zu,\n  \"requested_backend\": \"%s\",\n"
                 "  \"results\": [\n",
                 batch_size, wordvec::kSimdLanes, netlist::kBlockLanes, hw_threads(),
                 netlist::to_string(g_backend));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      const double pr1 = pr1_bitsliced(r.sorter, r.n);
      std::fprintf(f,
                   "    {\"sorter\": \"%s\", \"n\": %zu, \"single_vps\": %.1f, "
                   "\"bitsliced_vps\": %.1f, \"native_vps\": %.1f, "
                   "\"native_backend\": \"%s\", \"jit_compile_ms\": %.1f, "
                   "\"threaded_vps\": %.1f, \"threads_used\": %zu, "
                   "\"speedup_bitsliced\": %.2f, \"speedup_native_vs_interp\": %.2f, "
                   "\"speedup_threaded\": %.2f, "
                   "\"pr1_bitsliced_vps\": %.1f, \"vs_pr1\": %.2f}%s\n",
                   r.sorter, r.n, r.single_vps, r.sliced_vps, r.native_vps,
                   netlist::to_string(r.native_backend), r.jit_compile_ms, r.threaded_vps,
                   r.threads_used, r.sliced_vps / r.single_vps, r.native_vps / r.sliced_vps,
                   r.threaded_vps / r.single_vps, pr1, pr1 > 0 ? r.sliced_vps / pr1 : 0.0,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_batch_throughput.json\n");
  }
}

// google-benchmark timings for the steady-state engines at one mid size.
void BM_SingleVector(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const netlist::LevelizedCircuit lc(sorters::make_sorter("prefix", n)->build_circuit());
  const auto batch = make_batch(64, n);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lc.eval(batch[i++ % batch.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleVector)->Arg(256)->Arg(1024);

void BM_BitSliced(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const netlist::BitSlicedEvaluator ev(sorters::make_sorter("prefix", n)->build_circuit());
  const auto batch = make_batch(256, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.eval_batch(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_BitSliced)->Arg(256)->Arg(1024);

void BM_BatchRunner(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  netlist::BatchRunner runner(sorters::make_sorter("prefix", n)->build_circuit());
  const auto batch = make_batch(2048, n);
  std::vector<BitVec> out(batch.size());
  for (auto _ : state) {
    runner.run(batch, std::span<BitVec>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2048);
}
BENCHMARK(BM_BatchRunner)->Arg(256)->Arg(1024);

void BM_FishSortBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto fish = sorters::make_sorter("fish", n);
  const auto batch = make_batch(512, n);
  std::vector<BitVec> out(batch.size());
  for (auto _ : state) {
    fish->sort_batch(batch, std::span<BitVec>(out), {.threads = 1});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_FishSortBatch)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      if (!netlist::parse_backend(argv[++i], g_backend)) {
        std::fprintf(stderr, "unknown backend '%s'; valid backends: %s\n", argv[i],
                     netlist::backend_names());
        return 1;
      }
    }
  }
  if (quick) {
    report(/*quick=*/true);
    return jit_cache_smoke() ? 0 : 2;
  }
  return absort::bench::run(argc, argv, [] { report(/*quick=*/false); });
}
