// Experiment E-X1: Section III.C's comparison with Leighton's columnsort --
// the only other O(n)-cost time-multiplexed binary sorting scheme.

#include <cstdio>

#include "absort/analysis/formulas.hpp"
#include "absort/netlist/analyze.hpp"
#include "absort/sorters/columnsort.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

void report() {
  const auto unit = netlist::CostModel::paper_unit();

  bench::heading("time-multiplexed columnsort vs fish sorter (both O(n) cost)");
  std::printf("%8s | %12s %16s %16s | %12s %16s %16s\n", "n", "fish cost", "fish T unpip",
              "fish T pip", "colsort cost", "colsort T unpip", "colsort T pip");
  for (std::size_t e = 8; e <= 18; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    sorters::FishSorter fish(n, sorters::FishSorter::default_k(n));
    const auto fr = fish.cost_report(unit);
    const auto ft = fish.timing();
    const auto cu = analysis::columnsort_timemux(n, false);
    const auto cp = analysis::columnsort_timemux(n, true);
    std::printf("%8zu | %12.0f %16.0f %16.0f | %12.0f %16.0f %16.0f\n", n, fr.cost,
                ft.total_unpipelined, ft.total_pipelined, cu.cost, cu.time, cp.time);
  }
  std::printf("(columnsort needs data pipelined separately through each of its four sorting\n"
              " passes; the fish sorter pipelines through a single n/lg n-input sorter)\n");

  bench::heading("non-multiplexed columnsort network cost vs mux-merger (O(n lg^2) vs O(n lg))");
  std::printf("%8s %16s %16s %10s\n", "n", "colsort network", "mux-merger", "ratio");
  for (std::size_t e = 10; e <= 20; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const double cs = analysis::columnsort_network(n).cost;
    const double mm = analysis::muxmerge_sorter_paper(n).cost;
    std::printf("%8zu %16.0f %16.0f %10.3f\n", n, cs, mm, cs / mm);
  }

  bench::heading("columnsort correctness spot check (value level)");
  Xoshiro256 rng(15);
  for (std::size_t n : {256u, 4096u}) {
    const auto [r, s] = sorters::ColumnsortSorter::choose_shape(n);
    sorters::ColumnsortSorter sorter(n, r, s);
    std::size_t ok = 0;
    const int reps = 50;
    for (int i = 0; i < reps; ++i) {
      ok += sorter.sort(workload::random_bits(rng, n)).is_sorted_ascending() ? 1u : 0u;
    }
    std::printf("n=%5zu (r=%zu, s=%zu): %zu/%d random inputs sorted, %zu column sorts per pass\n",
                n, r, s, ok, reps, sorter.column_sorts());
  }
}

void BM_ColumnsortValue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [r, s] = sorters::ColumnsortSorter::choose_shape(n);
  sorters::ColumnsortSorter sorter(n, r, s);
  Xoshiro256 rng(16);
  auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sorter.sort(in));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ColumnsortValue)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

void BM_FishValueForComparison(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sorters::FishSorter sorter(n, sorters::FishSorter::default_k(n));
  Xoshiro256 rng(17);
  auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sorter.sort(in));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FishValueForComparison)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
