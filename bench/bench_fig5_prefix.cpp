// Experiment E-F5: Fig. 5 / eqs. (1)-(4) -- Network 1, the prefix binary
// sorter.  Prints measured unit cost/depth against the paper's closed forms
// and the Batcher baseline, then times construction and sorting.

#include <cstdio>

#include "absort/analysis/formulas.hpp"
#include "absort/netlist/analyze.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

void report() {
  bench::heading("Network 1 (prefix sorter): measured vs paper (cost 3n lg n + O(lg^2 n), "
                 "depth 3 lg^2 n + 2 lg n lg lg n)");
  std::printf("%8s %12s %12s %10s | %10s %12s | %14s %12s\n", "n", "cost", "3n lg n",
              "cost/nlgn", "depth", "paper bound", "Batcher cost", "B/ours");
  for (std::size_t e = 2; e <= 13; ++e) {
    const std::size_t n = std::size_t{1} << e;
    sorters::PrefixSorter s(n);
    const auto r = netlist::analyze_unit(s.build_circuit());
    const double paper = sorters::PrefixSorter::paper_cost(n);
    const double bound = sorters::PrefixSorter::expected_unit_depth(n);
    const double batcher = analysis::batcher_binary_sorter(n).cost;
    std::printf("%8zu %12.0f %12.0f %10.3f | %10.0f %12.0f | %14.0f %12.3f\n", n, r.cost, paper,
                r.cost / (static_cast<double>(n) * lg(double(n))), r.depth, bound, batcher,
                batcher / r.cost);
  }
  std::printf("(cost/nlgn converging to 3 reproduces eq. (1)'s leading constant;\n"
              " B/ours growing ~lg^2 n/12 reproduces the headline cost improvement)\n");
}

void BM_PrefixBuildCircuit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sorters::PrefixSorter s(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.build_circuit().num_components());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PrefixBuildCircuit)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_PrefixSortValue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sorters::PrefixSorter s(n);
  Xoshiro256 rng(5);
  auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.sort(in));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PrefixSortValue)->RangeMultiplier(4)->Range(64, 65536)->Complexity();

void BM_PrefixNetlistEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sorters::PrefixSorter s(n);
  const auto c = s.build_circuit();
  Xoshiro256 rng(6);
  auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.eval(in));
  }
}
BENCHMARK(BM_PrefixNetlistEval)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
