// E-S1 -- serving-layer coalescing: throughput of many producers submitting
// one small request at a time through SortService, coalesced vs the
// one-request-per-pass baseline.
//
// The bit-sliced engine amortizes one compiled-program pass over up to
// kBlockLanes vectors, but live traffic arrives one vector per submit; E-S1
// measures how much of the offline batch speedup (E-B1) the coalescing loop
// recovers under closed-loop load.  Each producer keeps at most 8 requests
// in flight (small-request traffic); the baseline is the same service with
// max_batch_lanes = 1 (every request rides its own pass), so the two modes
// differ only in coalescing.  The report writes BENCH_service.json; --quick
// runs a small smoke subset (no JSON, no google-benchmark) for ctest.
//
// E-FI1 -- the degradation ladder's cost: the same closed-loop load served
// (a) healthy, (b) healthy with the per-batch output self-check on, and
// (c) fully degraded (engine compilation made to fail, so every request
// rides the per-vector fallback).  (b)/(a) prices the self-check; (a)/(c)
// is the throughput cliff quarantine steps off -- the number that justifies
// parole.  Writes BENCH_service_faults.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/native_engine.hpp"
#include "absort/service/fault_injection.hpp"
#include "absort/service/sort_service.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

constexpr std::size_t kWindow = 8;  ///< in-flight requests per producer

std::size_t hw_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct LoadResult {
  double vps = 0;          ///< completed requests per second, wall clock
  double mean_batch = 0;   ///< mean coalesced micro-batch size
  std::uint64_t p50_wait_us = 0;
  std::uint64_t p99_wait_us = 0;
  std::size_t shards = 1;        ///< executor shards the service actually ran
  std::size_t threads_used = 1;  ///< shards x resolved engine worker threads
};

/// Drives `producers` closed-loop producers (window kWindow) through one
/// SortService and reports wall-clock throughput plus queue statistics.
/// The (sorter, n) engine is compiled by a warm-up request before timing, so
/// both modes measure steady-state serving, not compilation.
LoadResult drive(const service::ServiceOptions& so, const char* sorter, std::size_t n,
                 std::size_t producers, std::size_t requests_per_producer) {
  service::SortService svc(so);
  {
    Xoshiro256 warm_rng(1);
    (void)svc.sort(sorter, workload::random_bits(warm_rng, n));
  }
  const auto warm = svc.stats();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Xoshiro256 rng(0xE51 ^ (p * 0x9E3779B97F4A7C15ULL));
      std::vector<std::future<service::SortResult>> window;
      for (std::size_t i = 0; i < requests_per_producer; ++i) {
        window.push_back(svc.submit(sorter, workload::random_bits(rng, n)));
        if (window.size() >= kWindow) {
          (void)window.front().get();
          window.erase(window.begin());
        }
      }
      for (auto& f : window) (void)f.get();
    });
  }
  for (auto& t : threads) t.join();
  const double secs = seconds_since(t0);

  const auto st = svc.stats();
  LoadResult r;
  r.vps = static_cast<double>(producers * requests_per_producer) / secs;
  r.shards = svc.shard_count();
  const std::size_t engine_threads = svc.options().batch.threads;
  r.threads_used = r.shards * (engine_threads ? engine_threads : hw_threads());
  const std::uint64_t batches = st.batches - warm.batches;
  const std::uint64_t coalesced = st.completed - warm.completed;
  r.mean_batch = batches ? static_cast<double>(coalesced) / static_cast<double>(batches) : 0.0;
  r.p50_wait_us = st.queue_wait_us.percentile(0.50);
  r.p99_wait_us = st.queue_wait_us.percentile(0.99);
  return r;
}

/// Engine backend for every service in this bench (--backend overrides).
netlist::Backend g_backend = netlist::Backend::Auto;

service::ServiceOptions coalesced_options(std::size_t linger_us) {
  service::ServiceOptions so;
  so.max_batch_lanes = netlist::kBlockLanes;
  so.max_linger = std::chrono::microseconds(linger_us);
  so.batch.backend = g_backend;
  return so;
}

service::ServiceOptions baseline_options() {
  service::ServiceOptions so;
  so.max_batch_lanes = 1;  // every request rides its own compiled-program pass
  so.max_linger = std::chrono::microseconds(0);
  so.batch.backend = g_backend;
  return so;
}

// E-S1 warm/cold cache: time-to-first-response of a fresh service on the
// native backend -- the warm-up cost drive() deliberately excludes from the
// steady-state rows.  Cold points the JIT at an empty on-disk cache, so the
// first request pays emit + system compiler + dlopen; warm constructs a
// second service over the now-populated cache and pays only the lookup.
struct JitRow {
  bool ran = false;  ///< false: no native toolchain, row skipped
  double cold_ms = 0;
  double warm_ms = 0;
  std::uint64_t compiles = 0, cache_hits = 0, fallbacks = 0;
};

JitRow measure_first_response() {
  JitRow r;
  if (!netlist::native_toolchain_available()) return r;
#if !defined(_WIN32)
  // A private cache dir guarantees the cold leg really compiles instead of
  // loading a .so left by an earlier run; (sorter, n) is unique to this row
  // so the in-process kernel registry cannot satisfy it either.
  const std::string dir =
      "/tmp/absort-jit-bench." + std::to_string(static_cast<unsigned long>(::getpid()));
  const char* prev = std::getenv("ABSORT_JIT_CACHE");
  const std::string saved = prev ? prev : "";
  ::setenv("ABSORT_JIT_CACHE", dir.c_str(), 1);

  auto so = coalesced_options(200);
  so.batch.backend = netlist::Backend::Native;
  Xoshiro256 rng(11);
  const auto input = workload::random_bits(rng, 128);
  const auto before = netlist::jit_counters();
  {
    service::SortService svc(so);
    const auto t0 = std::chrono::steady_clock::now();
    (void)svc.sort("batcher", input);
    r.cold_ms = seconds_since(t0) * 1e3;
  }
  {
    service::SortService svc(so);
    const auto t0 = std::chrono::steady_clock::now();
    (void)svc.sort("batcher", input);
    r.warm_ms = seconds_since(t0) * 1e3;
  }
  const auto after = netlist::jit_counters();
  r.compiles = after.compiles - before.compiles;
  r.cache_hits = after.cache_hits - before.cache_hits;
  r.fallbacks = after.fallbacks - before.fallbacks;
  r.ran = true;

  if (prev) {
    ::setenv("ABSORT_JIT_CACHE", saved.c_str(), 1);
  } else {
    ::unsetenv("ABSORT_JIT_CACHE");
  }
  (void)std::system(("rm -rf '" + dir + "'").c_str());
#endif
  return r;
}

void print_jit_row(const JitRow& jit) {
  std::printf("\nfirst-response (native backend, batcher n=128): ");
  if (!jit.ran) {
    std::printf("skipped (no native toolchain)\n");
    return;
  }
  std::printf("cold %.1f ms, warm %.2f ms (%.0fx); jit compiles=%llu cache_hits=%llu "
              "fallbacks=%llu\n",
              jit.cold_ms, jit.warm_ms, jit.warm_ms > 0 ? jit.cold_ms / jit.warm_ms : 0.0,
              static_cast<unsigned long long>(jit.compiles),
              static_cast<unsigned long long>(jit.cache_hits),
              static_cast<unsigned long long>(jit.fallbacks));
}

struct Row {
  const char* sorter;
  std::size_t n;
  std::size_t producers;
  std::size_t linger_us;
  double baseline_vps;
  LoadResult coalesced;
};

void report(bool quick) {
  absort::bench::heading("E-S1: SortService coalescing, closed-loop producers (window 8)");
  std::printf("%zu hardware threads, %zu-lane blocks, backend %s%s\n\n", hw_threads(),
              netlist::kBlockLanes, netlist::to_string(netlist::resolve_backend(g_backend)),
              quick ? " [quick]" : "");
  std::printf("%-8s %6s %5s %10s %14s %14s %8s %7s %10s %10s\n", "sorter", "n", "prod",
              "linger us", "baseline v/s", "coalesced v/s", "speedup", "batch",
              "p50 wait", "p99 wait");

  const auto sizes = quick ? std::vector<std::size_t>{64, 256}
                           : std::vector<std::size_t>{64, 256, 1024};
  const auto producer_counts =
      quick ? std::vector<std::size_t>{4} : std::vector<std::size_t>{2, 8};
  const auto lingers = quick ? std::vector<std::size_t>{200}
                             : std::vector<std::size_t>{0, 200, 1000};

  std::vector<Row> rows;
  const struct {
    const char* sorter;
    std::size_t n;
  } cases[] = {{"prefix", 64}, {"prefix", 256}, {"prefix", 1024}, {"fish", 256}};
  for (const auto& c : cases) {
    if (std::find(sizes.begin(), sizes.end(), c.n) == sizes.end()) continue;
    if (quick && std::strcmp(c.sorter, "fish") == 0) continue;
    for (const std::size_t producers : producer_counts) {
      // Requests sized so the slow (baseline) leg stays in the seconds
      // range even at n = 1024 on one core.
      const std::size_t reqs = quick ? 250 : (c.n >= 1024 ? 400 : (c.n >= 256 ? 1200 : 2500));
      const double baseline =
          drive(baseline_options(), c.sorter, c.n, producers, reqs).vps;
      for (const std::size_t linger : lingers) {
        const auto co = drive(coalesced_options(linger), c.sorter, c.n, producers, reqs);
        rows.push_back(Row{c.sorter, c.n, producers, linger, baseline, co});
        std::printf("%-8s %6zu %5zu %10zu %14.0f %14.0f %7.1fx %7.1f %9llu %9llu\n",
                    c.sorter, c.n, producers, linger, baseline, co.vps, co.vps / baseline,
                    co.mean_batch, static_cast<unsigned long long>(co.p50_wait_us),
                    static_cast<unsigned long long>(co.p99_wait_us));
      }
    }
  }
  const JitRow jit = measure_first_response();
  print_jit_row(jit);
  if (quick) return;  // smoke mode: no JSON, numbers are not steady-state

  if (FILE* f = std::fopen("BENCH_service.json", "w")) {
    std::fprintf(f,
                 "{\n  \"benchmark\": \"service_coalescing\",\n  \"window\": %zu,\n"
                 "  \"block_lanes\": %zu,\n  \"hardware_threads\": %zu,\n"
                 "  \"backend\": \"%s\",\n",
                 kWindow, netlist::kBlockLanes, hw_threads(),
                 netlist::to_string(netlist::resolve_backend(g_backend)));
    if (jit.ran) {
      std::fprintf(f,
                   "  \"first_response\": {\"sorter\": \"batcher\", \"n\": 128, "
                   "\"cold_ms\": %.1f, \"warm_ms\": %.2f, \"jit_compiles\": %llu, "
                   "\"jit_cache_hits\": %llu, \"jit_fallbacks\": %llu},\n",
                   jit.cold_ms, jit.warm_ms, static_cast<unsigned long long>(jit.compiles),
                   static_cast<unsigned long long>(jit.cache_hits),
                   static_cast<unsigned long long>(jit.fallbacks));
    }
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"sorter\": \"%s\", \"n\": %zu, \"producers\": %zu, "
                   "\"linger_us\": %zu, \"shards\": %zu, \"threads_used\": %zu, "
                   "\"baseline_vps\": %.1f, \"coalesced_vps\": %.1f, "
                   "\"speedup\": %.2f, \"mean_batch\": %.1f, \"p50_wait_us\": %llu, "
                   "\"p99_wait_us\": %llu}%s\n",
                   r.sorter, r.n, r.producers, r.linger_us, r.coalesced.shards,
                   r.coalesced.threads_used, r.baseline_vps, r.coalesced.vps,
                   r.coalesced.vps / r.baseline_vps, r.coalesced.mean_batch,
                   static_cast<unsigned long long>(r.coalesced.p50_wait_us),
                   static_cast<unsigned long long>(r.coalesced.p99_wait_us),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_service.json\n");
  }
}

// E-FI1: healthy vs self-check vs degraded throughput, same closed-loop load.
void report_faults(bool quick) {
  absort::bench::heading(
      "E-FI1: degradation ladder throughput (healthy / self-check / degraded)");
  std::printf("%-8s %6s %5s %13s %15s %13s %9s %9s\n", "sorter", "n", "prod", "healthy v/s",
              "self-check v/s", "degraded v/s", "check ovh", "degr cost");

  struct FiRow {
    const char* sorter;
    std::size_t n;
    std::size_t producers;
    std::size_t shards, threads_used;
    double healthy_vps, self_check_vps, degraded_vps;
  };
  std::vector<FiRow> rows;
  const struct {
    const char* sorter;
    std::size_t n;
  } cases[] = {{"prefix", 256}, {"prefix", 1024}};
  for (const auto& c : cases) {
    if (quick && c.n > 256) continue;
    const std::size_t producers = 4;
    const std::size_t reqs = quick ? 250 : (c.n >= 1024 ? 400 : 1200);

    const auto healthy_res = drive(coalesced_options(200), c.sorter, c.n, producers, reqs);
    const double healthy = healthy_res.vps;

    auto sc = coalesced_options(200);
    sc.self_check = service::SelfCheck::Full;
    const double checked = drive(sc, c.sorter, c.n, producers, reqs).vps;

    // Degraded: every compile attempt fails, so the warm-up request already
    // quarantines the key and the timed load is pure per-vector fallback.
    auto dg = coalesced_options(200);
    service::FaultPlanOptions fo;
    fo.compile_fail = 1.0;
    dg.compile_attempts = 1;
    dg.compile_backoff = std::chrono::microseconds(0);
    dg.fault_plan = std::make_shared<service::FaultPlan>(fo);
    const double degraded = drive(dg, c.sorter, c.n, producers, reqs).vps;

    rows.push_back(FiRow{c.sorter, c.n, producers, healthy_res.shards,
                         healthy_res.threads_used, healthy, checked, degraded});
    std::printf("%-8s %6zu %5zu %13.0f %15.0f %13.0f %8.2fx %8.1fx\n", c.sorter, c.n,
                producers, healthy, checked, degraded, healthy / checked,
                healthy / degraded);
  }
  if (quick) return;

  if (FILE* f = std::fopen("BENCH_service_faults.json", "w")) {
    std::fprintf(f,
                 "{\n  \"benchmark\": \"service_degradation\",\n  \"window\": %zu,\n"
                 "  \"hardware_threads\": %zu,\n  \"results\": [\n",
                 kWindow, hw_threads());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const FiRow& r = rows[i];
      std::fprintf(f,
                   "    {\"sorter\": \"%s\", \"n\": %zu, \"producers\": %zu, "
                   "\"shards\": %zu, \"threads_used\": %zu, "
                   "\"healthy_vps\": %.1f, \"self_check_vps\": %.1f, "
                   "\"degraded_vps\": %.1f, \"self_check_overhead\": %.3f, "
                   "\"degradation_factor\": %.2f}%s\n",
                   r.sorter, r.n, r.producers, r.shards, r.threads_used,
                   r.healthy_vps, r.self_check_vps,
                   r.degraded_vps, r.healthy_vps / r.self_check_vps,
                   r.healthy_vps / r.degraded_vps, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_service_faults.json\n");
  }
}

// google-benchmark timing: single-request round-trip latency through the
// service (submit -> coalesce -> eval -> future), the per-request overhead
// floor coalescing has to amortize.
void BM_ServiceRoundtrip(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  service::ServiceOptions so;
  so.max_linger = std::chrono::microseconds(0);
  service::SortService svc(so);
  Xoshiro256 rng(7);
  const auto input = workload::random_bits(rng, n);
  (void)svc.sort("prefix", input);  // compile the engine outside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.sort("prefix", input));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceRoundtrip)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, faults_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {  // E-FI1 alone, with JSON
      faults_only = true;
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      if (!netlist::parse_backend(argv[++i], g_backend)) {
        std::fprintf(stderr, "unknown backend '%s'; valid backends: %s\n", argv[i],
                     netlist::backend_names());
        return 1;
      }
    }
  }
  if (quick) {
    report(/*quick=*/true);
    report_faults(/*quick=*/true);
    return 0;
  }
  if (faults_only) {
    report_faults(/*quick=*/false);
    return 0;
  }
  return absort::bench::run(argc, argv, [] {
    report(/*quick=*/false);
    report_faults(/*quick=*/false);
  });
}
