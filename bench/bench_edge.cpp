// E-E1 -- end-to-end SLO numbers for the network serving edge: latency
// percentiles and goodput through the full path (framing codec -> epoll
// reactor -> SortService micro-batching -> waiter pool -> framing codec),
// measured two ways:
//
//   * closed loop: C concurrent clients, each with one connection and one
//     outstanding synchronous request -- the classic fixed-concurrency
//     benchmark.  Latency is the request round trip, so a slow server slows
//     the *offered* load down with it: closed-loop percentiles flatter the
//     server under overload.
//
//   * open loop: one pipelined connection, Poisson arrivals at a fixed
//     offered rate lambda, a heavy-tailed mixed-n request population, and a
//     spread of per-request deadline budgets.  Arrivals are scheduled on an
//     absolute clock and latency is measured from the *scheduled* arrival
//     time, not the actual send -- when the sender falls behind, the queueing
//     delay stays in the number instead of silently vanishing (the
//     coordinated-omission correction).  Goodput counts Ok responses only;
//     Shedded and Expired are the server refusing work it could not serve in
//     time, which is the designed overload behavior, not noise.
//
// Percentiles (p50/p99/p999) are exact order statistics of the recorded
// latency vector -- no histogram binning on the reporting path.
//
// Before any timing, a validation pass drives the same vectors through the
// edge and through direct SortService::submit on the same service instance
// and insists the answers are bit-identical, so the numbers below are for a
// path that provably serves correct permutations.
//
// Writes BENCH_edge.json; --quick runs a seconds-scale smoke subset for
// ctest (no JSON, numbers are not steady-state).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "absort/edge/edge_client.hpp"
#include "absort/edge/edge_server.hpp"
#include "absort/service/sort_service.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;
using Clock = std::chrono::steady_clock;

constexpr const char* kHost = "127.0.0.1";

/// Service shard count for every scenario stack (set by --shards).
std::size_t g_shards = 1;

std::size_t hw_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

double uniform01(Xoshiro256& rng) { return static_cast<double>(rng() >> 11) * 0x1.0p-53; }

double us_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/// Exact order-statistic percentile of an (unsorted) latency vector.
struct Percentiles {
  double p50 = 0, p99 = 0, p999 = 0;
};

Percentiles exact_percentiles(std::vector<double>& lat) {
  Percentiles p;
  if (lat.empty()) return p;
  std::sort(lat.begin(), lat.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(lat.size() - 1));
    return lat[idx];
  };
  p.p50 = at(0.50);
  p.p99 = at(0.99);
  p.p999 = at(0.999);
  return p;
}

/// The heavy-tailed request population: mostly small sorts, a thin tail of
/// large ones (the tail dominates service time, as heavy tails do).
struct Draw {
  const char* sorter;
  std::size_t n;
  std::uint32_t deadline_us;
};

Draw draw_request(Xoshiro256& rng, bool with_deadlines) {
  Draw d{};
  const double u = uniform01(rng);
  if (u < 0.70) {
    d.sorter = "prefix";
    d.n = 64;
  } else if (u < 0.90) {
    d.sorter = "mux-merger";
    d.n = 256;
  } else if (u < 0.98) {
    d.sorter = "mux-merger";
    d.n = 1024;
  } else {
    d.sorter = "batcher";
    d.n = 32;
  }
  if (with_deadlines) {
    // Deadline spread: half the traffic is best-effort (no deadline), the
    // rest splits between a generous and a tight budget.
    const double v = uniform01(rng);
    d.deadline_us = v < 0.5 ? 0 : (v < 0.8 ? 20000 : 2000);
  }
  return d;
}

/// One server stack for a scenario.  Reject overflow: an overloaded edge
/// sheds explicitly instead of buffering without bound (the SLO-serving
/// configuration from edge_server.hpp).
struct Stack {
  service::SortService svc;
  edge::EdgeServer server;

  explicit Stack()
      : svc([] {
          service::ServiceOptions so;
          so.max_linger = std::chrono::microseconds(200);
          so.overflow = service::ServiceOptions::Overflow::Reject;
          so.shards = g_shards;
          return so;
        }()),
        server(svc, [] {
          edge::EdgeOptions eo;
          eo.max_inflight_per_conn = 4096;
          return eo;
        }()) {
    server.start();
  }

  /// shards x resolved engine worker threads, for the honesty columns.
  [[nodiscard]] std::size_t threads_used() const {
    const std::size_t et = svc.options().batch.threads;
    return svc.shard_count() * (et ? et : hw_threads());
  }
};

/// Validation pass: the same inputs through the edge and through direct
/// SortService::submit on the same service; every pair must be bit-identical.
bool validate(Stack& stack, std::size_t reps) {
  Xoshiro256 r2(0x7A11D);
  edge::EdgeClient client;
  client.connect(kHost, stack.server.port());
  for (std::size_t i = 0; i < reps; ++i) {
    const auto d = draw_request(r2, /*with_deadlines=*/false);
    const auto in = workload::random_bits(r2, d.n);
    const auto via_edge = client.sort(d.sorter, in);
    const auto direct = stack.svc.submit(d.sorter, in).get();
    if (via_edge.status != edge::WireStatus::Ok ||
        direct.status != service::Status::Ok || via_edge.output != direct.output) {
      return false;
    }
  }
  return true;
}

struct ClosedResult {
  std::size_t clients = 0;
  std::size_t requests = 0;  ///< total Ok responses
  double goodput_rps = 0;
  Percentiles lat;
  std::size_t shards = 1, threads_used = 1;
};

/// Closed loop: `clients` threads, one synchronous request in flight each.
ClosedResult run_closed(Stack& stack, std::size_t clients, std::size_t per_client) {
  std::vector<std::vector<double>> lats(clients);
  std::vector<std::thread> threads;
  std::atomic<std::size_t> ok{0};
  const auto t0 = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Xoshiro256 rng(0xC105ED ^ (c * 0x9E37));
      edge::EdgeClient client;
      client.connect(kHost, stack.server.port());
      lats[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const auto d = draw_request(rng, /*with_deadlines=*/false);
        const auto in = workload::random_bits(rng, d.n);
        const auto sent = Clock::now();
        const auto resp = client.sort(d.sorter, in);
        if (resp.status == edge::WireStatus::Ok) {
          lats[c].push_back(us_since(sent, Clock::now()));
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double secs = us_since(t0, Clock::now()) / 1e6;

  ClosedResult res;
  res.clients = clients;
  res.requests = ok.load();
  res.shards = stack.svc.shard_count();
  res.threads_used = stack.threads_used();
  res.goodput_rps = static_cast<double>(res.requests) / secs;
  std::vector<double> all;
  for (auto& v : lats) all.insert(all.end(), v.begin(), v.end());
  res.lat = exact_percentiles(all);
  return res;
}

struct OpenResult {
  double offered_rps = 0;
  std::size_t scheduled = 0;
  std::size_t ok = 0, shedded = 0, expired = 0, other = 0;
  double goodput_rps = 0;
  double duration_s = 0;
  Percentiles lat;  ///< Ok responses only, measured from scheduled arrival
  std::size_t shards = 1, threads_used = 1;
};

/// Open loop: Poisson arrivals at `offered_rps` on one pipelined connection.
/// The sender never waits for responses; a receiver thread matches them by
/// id.  Latency for each Ok response = completion - *scheduled* arrival.
OpenResult run_open(Stack& stack, double offered_rps, std::size_t total,
                    bool with_deadlines) {
  edge::EdgeClient client;
  client.connect(kHost, stack.server.port());

  std::mutex m;
  std::map<std::uint64_t, Clock::time_point> scheduled_at;  // id -> scheduled arrival

  OpenResult res;
  res.offered_rps = offered_rps;
  res.scheduled = total;
  res.shards = stack.svc.shard_count();
  res.threads_used = stack.threads_used();

  std::vector<double> lats;
  lats.reserve(total);
  std::thread receiver([&] {
    edge::Response resp;
    std::size_t got = 0;
    while (got < total && client.recv(resp)) {
      const auto done = Clock::now();
      ++got;
      Clock::time_point sched;
      {
        std::lock_guard lk(m);
        const auto it = scheduled_at.find(resp.id);
        if (it == scheduled_at.end()) continue;  // unreachable: ids are ours
        sched = it->second;
        scheduled_at.erase(it);
      }
      switch (resp.status) {
        case edge::WireStatus::Ok:
          ++res.ok;
          lats.push_back(us_since(sched, done));
          break;
        case edge::WireStatus::Shedded:
          ++res.shedded;
          break;
        case edge::WireStatus::Expired:
          ++res.expired;
          break;
        default:
          ++res.other;
          break;
      }
    }
  });

  Xoshiro256 rng(0x09E41009);
  const auto t0 = Clock::now();
  auto next = t0;
  for (std::size_t i = 0; i < total; ++i) {
    // Exponential inter-arrival on an absolute schedule: sleep_until keeps
    // the offered rate independent of how long the sends themselves take.
    const double gap_us = -std::log(1.0 - uniform01(rng)) * 1e6 / offered_rps;
    next += std::chrono::microseconds(static_cast<std::int64_t>(gap_us));
    std::this_thread::sleep_until(next);
    const auto d = draw_request(rng, with_deadlines);
    const auto in = workload::random_bits(rng, d.n);
    // Latency clock starts at the scheduled arrival `next`, even if this
    // send is late (coordinated-omission correction).
    edge::Request req;
    req.type = edge::MessageType::Sort;
    req.id = static_cast<std::uint64_t>(i) + 1'000'000;
    req.deadline_us = d.deadline_us;
    req.sorter = d.sorter;
    req.input = in;
    {
      std::lock_guard lk(m);
      scheduled_at.emplace(req.id, next);
    }
    client.send(req);
  }
  receiver.join();
  res.duration_s = us_since(t0, Clock::now()) / 1e6;
  res.goodput_rps = static_cast<double>(res.ok) / res.duration_s;
  res.lat = exact_percentiles(lats);
  return res;
}

void report(bool quick) {
  {
    Stack stack;
    if (!validate(stack, quick ? 32 : 200)) {
      std::fprintf(stderr, "E-E1: edge vs direct submit MISMATCH -- aborting\n");
      std::exit(2);
    }
    std::printf("validation: edge responses bit-identical to direct SortService::submit\n");
  }

  absort::bench::heading("E-E1a: closed loop (fixed concurrency, mixed-n population)");
  std::printf("%7s %9s %12s %10s %10s %10s\n", "clients", "ok", "goodput r/s", "p50 us",
              "p99 us", "p999 us");
  std::vector<ClosedResult> closed;
  const std::size_t client_counts[] = {1, 8, 16};
  for (const std::size_t c : client_counts) {
    if (quick && c > 8) continue;
    Stack stack;
    const std::size_t per_client = quick ? 60 : 1500;
    const auto r = run_closed(stack, c, per_client);
    closed.push_back(r);
    std::printf("%7zu %9zu %12.0f %10.0f %10.0f %10.0f\n", r.clients, r.requests,
                r.goodput_rps, r.lat.p50, r.lat.p99, r.lat.p999);
  }

  absort::bench::heading(
      "E-E1b: open loop (Poisson arrivals, heavy-tailed n, deadline spread)");
  std::printf("%11s %9s %7s %7s %7s %12s %10s %10s %10s\n", "offered r/s", "sched", "ok",
              "shed", "expired", "goodput r/s", "p50 us", "p99 us", "p999 us");
  std::vector<OpenResult> open;
  const double rates[] = {500, 2000, 8000};
  for (const double rate : rates) {
    if (quick && rate > 500) continue;
    Stack stack;
    const auto total = static_cast<std::size_t>(quick ? rate * 0.5 : rate * 2.0);
    const auto r = run_open(stack, rate, total, /*with_deadlines=*/true);
    open.push_back(r);
    std::printf("%11.0f %9zu %7zu %7zu %7zu %12.0f %10.0f %10.0f %10.0f\n", r.offered_rps,
                r.scheduled, r.ok, r.shedded, r.expired, r.goodput_rps, r.lat.p50,
                r.lat.p99, r.lat.p999);
  }

  if (quick) return;  // smoke mode: no JSON, numbers are not steady-state

  if (FILE* f = std::fopen("BENCH_edge.json", "w")) {
    std::fprintf(f, "{\n  \"benchmark\": \"edge_slo\",\n  \"hardware_threads\": %zu,\n"
                 "  \"closed_loop\": [\n", hw_threads());
    for (std::size_t i = 0; i < closed.size(); ++i) {
      const auto& r = closed[i];
      std::fprintf(f,
                   "    {\"clients\": %zu, \"shards\": %zu, \"threads_used\": %zu, "
                   "\"ok\": %zu, \"goodput_rps\": %.1f, "
                   "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}%s\n",
                   r.clients, r.shards, r.threads_used, r.requests, r.goodput_rps,
                   r.lat.p50, r.lat.p99, r.lat.p999, i + 1 < closed.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"open_loop\": [\n");
    for (std::size_t i = 0; i < open.size(); ++i) {
      const auto& r = open[i];
      std::fprintf(f,
                   "    {\"offered_rps\": %.0f, \"shards\": %zu, \"threads_used\": %zu, "
                   "\"scheduled\": %zu, \"ok\": %zu, "
                   "\"shedded\": %zu, \"expired\": %zu, \"goodput_rps\": %.1f, "
                   "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
                   "\"duration_s\": %.2f}%s\n",
                   r.offered_rps, r.shards, r.threads_used, r.scheduled, r.ok, r.shedded,
                   r.expired, r.goodput_rps, r.lat.p50, r.lat.p99, r.lat.p999, r.duration_s,
                   i + 1 < open.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_edge.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      g_shards = std::max<std::size_t>(1, std::strtoull(argv[++i], nullptr, 10));
    }
  }
  report(quick);
  return 0;
}
