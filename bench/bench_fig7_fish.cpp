// Experiment E-F7/E-F8/E-F9: Fig. 7 -- Network 3, the time-multiplexed fish
// binary sorter; eqs. (17)-(26).  Prints the O(n)-cost table at k = lg n, the
// k-sweep, the sorting-time comparison with/without pipelining, and the
// worked examples of Figs. 8 and 9.

#include <cstdio>

#include "absort/netlist/analyze.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

void report() {
  const auto unit = netlist::CostModel::paper_unit();

  bench::heading("Fig. 8 worked example: 16-input 4-way mux-merger");
  {
    const auto in = BitVec::parse("1111/0001/0011/0111");
    std::printf("input (4-sorted): %s\nmerged:           %s\n", in.str(4).c_str(),
                sorters::kway_merge(in, 4).str(4).c_str());
  }
  bench::heading("Fig. 9 worked example: 8-input 4-way clean sorter");
  {
    const auto in = BitVec::parse("11/00/11/11");
    std::printf("input (clean 4-sorted): %s\nsorted:                 %s\n", in.str(2).c_str(),
                sorters::kway_clean_sort(in, 4).str(2).c_str());
  }

  bench::heading("Network 3 cost at k = lg n (paper eq. 19: O(n), constant <= 17)");
  std::printf("%8s %4s %12s %12s %10s %12s\n", "n", "k", "cost", "eq.(17)", "cost/n", "depth");
  for (std::size_t e = 6; e <= 16; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const std::size_t k = sorters::FishSorter::default_k(n);
    sorters::FishSorter s(n, k);
    const auto r = s.cost_report(unit);
    std::printf("%8zu %4zu %12.0f %12.0f %10.3f %12.0f\n", n, k, r.cost,
                sorters::FishSorter::paper_cost(n, k), r.cost / static_cast<double>(n), r.depth);
  }

  bench::heading("k-sweep at n = 4096 (cost/time trade)");
  std::printf("%6s %12s %10s %16s %16s\n", "k", "cost", "cost/n", "T unpipelined", "T pipelined");
  for (std::size_t k = 2; k <= 64; k *= 2) {
    sorters::FishSorter s(4096, k);
    const auto r = s.cost_report(unit);
    const auto t = s.timing();
    std::printf("%6zu %12.0f %10.3f %16.0f %16.0f\n", k, r.cost, r.cost / 4096.0,
                t.total_unpipelined, t.total_pipelined);
  }

  bench::heading("sorting time scaling (paper: O(lg^3 n) unpipelined, O(lg^2 n) pipelined)");
  std::printf("%8s %14s %10s %14s %10s\n", "n", "T unpipelined", "/lg^3 n", "T pipelined",
              "/lg^2 n");
  for (std::size_t e = 6; e <= 18; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    sorters::FishSorter s(n, sorters::FishSorter::default_k(n));
    const auto t = s.timing();
    const double l = lg(double(n));
    std::printf("%8zu %14.0f %10.3f %14.0f %10.3f\n", n, t.total_unpipelined,
                t.total_unpipelined / (l * l * l), t.total_pipelined, t.total_pipelined / (l * l));
  }
}

void BM_FishSortValue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sorters::FishSorter s(n, sorters::FishSorter::default_k(n));
  Xoshiro256 rng(10);
  auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.sort(in));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FishSortValue)->RangeMultiplier(4)->Range(64, 65536)->Complexity();

void BM_FishCostReport(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sorters::FishSorter s(n, sorters::FishSorter::default_k(n));
  const auto unit = netlist::CostModel::paper_unit();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.cost_report(unit).cost);
  }
}
BENCHMARK(BM_FishCostReport)->Arg(1024)->Arg(8192);

void BM_KwayMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(11);
  auto in = workload::random_k_sorted(rng, n, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sorters::kway_merge(in, 16));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KwayMerge)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
