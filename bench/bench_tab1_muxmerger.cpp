// Experiment E-T1: Table I -- "Behavior of mux-merger".  Regenerates the
// four select rows with the quarter dispositions and the IN-SWAP / OUT-SWAP
// patterns actually applied, then times the merger.

#include <cstdio>

#include "absort/netlist/analyze.hpp"
#include "absort/seqclass/seqclass.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

std::string cyc(const std::array<std::uint8_t, 4>& p) {
  // Renders the quarter permutation in cycle notation on {1..4}.
  std::string s;
  bool used[4] = {false, false, false, false};
  // out[q] = in[p[q]] means input p[q] -> output q.
  std::array<int, 4> to{};
  for (int q = 0; q < 4; ++q) to[p[static_cast<std::size_t>(q)]] = q;
  for (int start = 0; start < 4; ++start) {
    if (used[start]) continue;
    if (to[start] == start) {
      used[start] = true;
      s += "(" + std::to_string(start + 1) + ")";
      continue;
    }
    s += "(";
    int cur = start;
    while (!used[cur]) {
      used[cur] = true;
      s += std::to_string(cur + 1);
      cur = to[cur];
    }
    s += ")";
  }
  return s;
}

void report() {
  bench::heading("Table I: behavior of the mux-merger (n = 16 examples)");
  // One representative bisorted input per select value:
  const std::array<const char*, 4> inputs = {
      "00000111" "00000011",  // b2 = x[4] = 0, b4 = x[12] = 0
      "00000111" "00111111",  // b2 = 0, b4 = 1
      "00111111" "00000111",  // b2 = 1, b4 = 0
      "00111111" "01111111",  // b2 = 1, b4 = 1
  };
  const std::array<const char*, 4> dispositions = {
      "q1,q3 all 0; q2*q4 bisorted", "q1 all 0, q4 all 1; q2*q3 bisorted",
      "q2 all 1, q3 all 0; q4*q1 bisorted", "q2,q4 all 1; q1*q3 bisorted"};
  std::printf("%6s %20s %14s %16s   %s\n", "select", "input (bisorted)", "IN-SWAP", "OUT-SWAP",
              "quarter disposition");
  for (int sel = 0; sel < 4; ++sel) {
    const auto x = BitVec::parse(inputs[static_cast<std::size_t>(sel)]);
    const auto d = sorters::mux_merger_decision(x);
    std::printf("%4d   %20s %14s %16s   %s\n", d.select, x.str(4).c_str(),
                cyc(d.in_pattern).c_str(), cyc(d.out_pattern).c_str(),
                dispositions[static_cast<std::size_t>(sel)]);
  }
  std::printf("(OUT-SWAP uses the paper's three patterns {identity,(243),(13)(24)};\n"
              " the IN-SWAP set is the verified variant documented in EXPERIMENTS.md)\n");

  bench::heading("merger correctness sweep (exhaustive bisorted inputs)");
  for (std::size_t n : {16u, 64u, 256u}) {
    netlist::Circuit c;
    const auto in = c.inputs(n);
    c.mark_outputs(sorters::build_mux_merger(c, in));
    std::size_t total = 0, ok = 0;
    for (const auto& x : seqclass::enumerate_bisorted(n)) {
      ++total;
      ok += c.eval(x).is_sorted_ascending() ? 1u : 0u;
    }
    const auto r = netlist::analyze_unit(c);
    std::printf("n=%5zu: %zu/%zu bisorted inputs merged; cost %.0f (= 4n-7), depth %.0f\n", n, ok,
                total, r.cost, r.depth);
  }
}

void BM_MuxMergerEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  netlist::Circuit c;
  const auto in = c.inputs(n);
  c.mark_outputs(sorters::build_mux_merger(c, in));
  Xoshiro256 rng(7);
  auto x = workload::random_bisorted(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.eval(x));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MuxMergerEval)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
