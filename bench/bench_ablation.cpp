// Ablation studies for the design choices DESIGN.md calls out:
//  A1  prefix sorter's count adder: parallel-prefix (Kogge-Stone) vs ripple
//  A2  fish sorter: which binary sorter fills the small-sorter slot
//  A3  model-B realization overhead: FishHardware datapath vs the paper's
//      abstract accounting
//  A4  switch activity (dynamic-power proxy) across network families
//  A5  levelized vs sequential netlist evaluation (simulator throughput)

#include <cstdio>

#include "absort/analysis/activity.hpp"
#include "absort/netlist/analyze.hpp"
#include "absort/netlist/levelized.hpp"
#include "absort/netlist/optimize.hpp"
#include "absort/sim/fish_hardware.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/hybrid_oem.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

void report() {
  const auto unit = netlist::CostModel::paper_unit();

  bench::heading("A1: prefix sorter count-adder choice (cost | depth)");
  std::printf("%8s %14s %14s %14s %14s\n", "n", "KS cost", "ripple cost", "KS depth",
              "ripple depth");
  for (std::size_t e = 4; e <= 12; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const auto ks = netlist::analyze_unit(
        sorters::PrefixSorter(n, sorters::PrefixSorter::AdderKind::KoggeStone).build_circuit());
    const auto rp = netlist::analyze_unit(
        sorters::PrefixSorter(n, sorters::PrefixSorter::AdderKind::Ripple).build_circuit());
    std::printf("%8zu %14.0f %14.0f %14.0f %14.0f\n", n, ks.cost, rp.cost, ks.depth, rp.depth);
  }
  std::printf("(ripple saves ~7%% of the gates; at these widths (lg n bits) even the\n"
              " linear carry chain hides under the patch-up recursion's depth, so the\n"
              " paper's prefix-adder choice only matters asymptotically)\n");

  bench::heading("A2: fish small-sorter slot (n/k-input sorter netlist cost | depth)");
  std::printf("%8s %6s %16s %16s %16s %16s\n", "n", "n/k", "mux-merger", "prefix",
              "mm depth", "prefix depth");
  for (std::size_t e = 8; e <= 14; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const std::size_t g = n / sorters::FishSorter::default_k(n);
    const auto mm = netlist::analyze_unit(sorters::MuxMergeSorter(g).build_circuit());
    const auto pf = netlist::analyze_unit(sorters::PrefixSorter(g).build_circuit());
    std::printf("%8zu %6zu %16.0f %16.0f %16.0f %16.0f\n", n, g, mm.cost, pf.cost, mm.depth,
                pf.depth);
  }

  bench::heading("A3: model-B hardware overhead (clocked datapath vs abstract accounting)");
  std::printf("%8s %4s %14s %14s %10s %10s\n", "n", "k", "abstract", "hardware", "ratio",
              "cycles");
  for (std::size_t e = 6; e <= 12; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const std::size_t k = sorters::FishSorter::default_k(n);
    sorters::FishSorter model(n, k);
    sim::FishHardware hw(n, k);
    const double a = model.cost_report(unit).cost;
    const double h = hw.datapath_report(unit).cost;
    std::printf("%8zu %4zu %14.0f %14.0f %10.3f %10zu\n", n, k, a, h, h / a,
                hw.cycles_per_sort());
  }
  std::printf("(the gap is the register-hold muxes, write enables and rank units --\n"
              " the storage/control cost the paper's model leaves to the reader)\n");

  bench::heading("A3b: clocked schedules (cycles per frame)");
  std::printf("%8s %4s %12s %12s %14s\n", "n", "k", "sequential", "overlapped",
              "streamed (10)");
  for (std::size_t e = 6; e <= 12; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const std::size_t k = sorters::FishSorter::default_k(n);
    sim::FishHardware hw(n, k);
    std::printf("%8zu %4zu %12zu %12zu %14.1f\n", n, k, hw.cycles_per_sort(),
                hw.cycles_per_sort_overlapped(),
                static_cast<double>(hw.cycles_per_stream(10)) / 10.0);
  }
  std::printf("(ping-pong M banks let a new frame load while the previous dispatches:\n"
              " steady-state one frame per k cycles)\n");

  bench::heading("A4: steering-element activity on uniform inputs (n = 1024)");
  {
    Xoshiro256 rng(23);
    struct Row {
      const char* label;
      netlist::Circuit circuit;
    };
    Row rows[] = {
        {"batcher", sorters::BatcherOemSorter(1024).build_circuit()},
        {"prefix", sorters::PrefixSorter(1024).build_circuit()},
        {"mux-merger", sorters::MuxMergeSorter(1024).build_circuit()},
    };
    for (auto& row : rows) {
      const auto a = analysis::measure_activity(row.circuit, rng, 100);
      std::printf("  %-12s steering activity %.3f\n", row.label, a.steering_activity());
    }
  }

  bench::heading("A6: optimizer on the constructions (constant folding + dead-code)");
  {
    struct Row {
      const char* label;
      netlist::Circuit circuit;
    };
    sim::FishHardware hw64(64, 8), hw256(256, 8);
    Row rows[] = {
        {"mux-merger n=256", sorters::MuxMergeSorter(256).build_circuit()},
        {"prefix n=256", sorters::PrefixSorter(256).build_circuit()},
        {"fish hardware n=64", hw64.machine().observable_combinational()},
        {"fish hardware n=256", hw256.machine().observable_combinational()},
    };
    std::printf("%22s %10s %10s %10s %8s\n", "circuit", "before", "after", "folded+dead",
                "saved");
    for (auto& row : rows) {
      netlist::OptimizeStats st;
      (void)netlist::optimize(row.circuit, &st);
      std::printf("%22s %10zu %10zu %10zu %7.1f%%\n", row.label, st.before, st.after,
                  st.folded + st.dead,
                  100.0 * (1.0 - double(st.after) / double(st.before)));
    }
    std::printf("(mux-merger is exactly minimal; prefix carries ~3%% dead low-order\n"
                " count-adder bits its selects never read; the clocked datapath's\n"
                " constant-fed enable trees fold by 12-20%%)\n");
  }

  bench::heading("A7: the Section III.A reader exercise -- sort/merge split sweep");
  std::printf("%8s |", "n");
  for (std::size_t b = 1; b <= 64; b *= 2) std::printf(" %9s", ("b=" + std::to_string(b)).c_str());
  std::printf(" %9s %9s\n", "...", "b=n");
  for (std::size_t n : {256u, 4096u}) {
    std::printf("%8zu |", n);
    for (std::size_t b = 1; b <= 64; b *= 2) {
      std::printf(" %9zu", sorters::HybridOemSorter::expected_comparators(n, b));
    }
    std::printf(" %9s %9zu\n", "", sorters::HybridOemSorter::expected_comparators(n, n));
  }
  std::printf("(nonadaptively the count falls monotonically toward pure Batcher; shifting\n"
              " work into balanced merging only pays once the adaptive patch-up replaces\n"
              " those merges with O(n) steering -- Network 1's whole point)\n");

  bench::heading("A5: levelized evaluator characteristics (prefix sorter)");
  std::printf("%8s %12s %10s %14s\n", "n", "components", "levels", "widest level");
  for (std::size_t e = 8; e <= 13; e += 1) {
    const std::size_t n = std::size_t{1} << e;
    const netlist::LevelizedCircuit lev(sorters::PrefixSorter(n).build_circuit());
    std::printf("%8zu %12zu %10zu %14zu\n", n, lev.circuit().num_components(), lev.num_levels(),
                lev.max_level_width());
  }
}

void BM_SequentialEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto c = sorters::PrefixSorter(n).build_circuit();
  Xoshiro256 rng(29);
  const auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.eval(in));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SequentialEval)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_LevelizedEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const netlist::LevelizedCircuit lev(sorters::PrefixSorter(n).build_circuit());
  Xoshiro256 rng(29);
  const auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lev.eval(in));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LevelizedEval)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_LevelizedEvalParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const netlist::LevelizedCircuit lev(sorters::PrefixSorter(n).build_circuit());
  Xoshiro256 rng(29);
  const auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lev.eval_parallel(in, 4));
  }
}
BENCHMARK(BM_LevelizedEvalParallel)->Arg(4096)->Arg(16384);

void BM_FishHardwareSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::FishHardware hw(n, sorters::FishSorter::default_k(n));
  Xoshiro256 rng(31);
  const auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw.sort(in));
  }
}
BENCHMARK(BM_FishHardwareSort)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
