// Experiment E-X2: the abstract's comparative claims.
//  * "improves the cost complexity of Batcher's binary sorters by a factor
//    of O(lg^2 n) while matching their sorting time"
//  * "our complexities outperform those of the AKS sorting network until n
//    becomes extremely large"

#include <cstdio>

#include "absort/analysis/crossover.hpp"
#include "absort/analysis/formulas.hpp"
#include "absort/netlist/analyze.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/sorters/prefix_sorter.hpp"
#include "absort/util/math.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

void report() {
  const auto unit = netlist::CostModel::paper_unit();

  bench::heading("cost ratio Batcher / adaptive (headline: grows as Theta(lg^2 n))");
  std::printf("%8s %14s %14s %12s %12s %12s\n", "n", "Batcher", "prefix", "mux-merger",
              "B/prefix", "B/muxmerge");
  for (std::size_t e = 4; e <= 13; ++e) {
    const std::size_t n = std::size_t{1} << e;
    const double b = analysis::batcher_binary_sorter(n).cost;
    const double p = netlist::analyze_unit(sorters::PrefixSorter(n).build_circuit()).cost;
    const double m = netlist::analyze_unit(sorters::MuxMergeSorter(n).build_circuit()).cost;
    std::printf("%8zu %14.0f %14.0f %12.0f %12.3f %12.3f\n", n, b, p, m, b / p, b / m);
  }

  bench::heading("per-element cost of the fish sorter vs everyone (O(n) headline)");
  std::printf("%8s %12s %12s %12s %12s\n", "n", "Batcher/n", "prefix/n", "muxmrg/n", "fish/n");
  for (std::size_t e = 8; e <= 14; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const double b = analysis::batcher_binary_sorter(n).cost / double(n);
    const double p = sorters::PrefixSorter::expected_unit_cost(n) / double(n);
    const double m = sorters::MuxMergeSorter::expected_unit_cost(n) / double(n);
    sorters::FishSorter fish(n, sorters::FishSorter::default_k(n));
    const double f = fish.cost_report(unit).cost / double(n);
    std::printf("%8zu %12.2f %12.2f %12.2f %12.2f\n", n, b, p, m, f);
  }

  bench::heading("AKS comparison (Paterson constants, depth ~ 6100 lg n)");
  std::printf("%8s %16s %16s %12s %12s\n", "n", "AKS cost", "muxmrg cost", "AKS depth",
              "muxmrg depth");
  for (std::size_t e = 4; e <= 24; e += 4) {
    const std::size_t n = std::size_t{1} << e;
    const auto aks = analysis::aks_model(n);
    const auto mm = analysis::muxmerge_sorter_paper(n);
    std::printf("%8zu %16.3g %16.3g %12.0f %12.0f\n", n, aks.cost, mm.cost, aks.depth, mm.depth);
  }
  std::printf("AKS *depth* only wins for lg n > %.0f (n > 2^%.0f) -- \"until n becomes "
              "extremely large\"; its cost never wins (3050 n lg n vs 4 n lg n).\n",
              analysis::aks_depth_crossover_lg_n(), analysis::aks_depth_crossover_lg_n());

  bench::heading("sorting-time parity with Batcher (both Theta(lg^2 n))");
  std::printf("%8s %14s %14s %14s %10s\n", "n", "Batcher depth", "muxmrg depth", "prefix depth",
              "max ratio");
  for (std::size_t e = 4; e <= 12; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const double b = analysis::batcher_binary_sorter(n).depth;
    const double m = netlist::analyze_unit(sorters::MuxMergeSorter(n).build_circuit()).depth;
    const double p = netlist::analyze_unit(sorters::PrefixSorter(n).build_circuit()).depth;
    std::printf("%8zu %14.0f %14.0f %14.0f %10.2f\n", n, b, m, p, std::max(m, p) / b);
  }
}

void BM_AdaptiveVsBatcherCostModel(benchmark::State& state) {
  // Times the analytic sweep used above (cheap; anchors the harness).
  for (auto _ : state) {
    double acc = 0;
    for (std::size_t e = 4; e <= 20; ++e) {
      const std::size_t n = std::size_t{1} << e;
      acc += analysis::batcher_binary_sorter(n).cost / analysis::muxmerge_sorter_paper(n).cost;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_AdaptiveVsBatcherCostModel);

void BM_MeasuredCostSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto unit = netlist::CostModel::paper_unit();
  for (auto _ : state) {
    sorters::FishSorter fish(n, sorters::FishSorter::default_k(n));
    benchmark::DoNotOptimize(fish.cost_report(unit).cost);
  }
}
BENCHMARK(BM_MeasuredCostSweep)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
