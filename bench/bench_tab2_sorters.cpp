// E-T2b -- the sorter-family counterpart of Table II: every registered
// sorter family, one measured row each, through the same compile-once batch
// path the serving layer uses:
//
//   * cost / depth under the paper's unit accounting (Section II), plus the
//     raw component count and what the circuit-level optimizer shrinks it to
//     (periodic-k is the interesting row: consecutive period-3 blocks abut
//     identical even layers, E|E, and a comparator fed by its own twin's
//     outputs is removable);
//   * compile time of make_batch_sorter() -- the one-time cost the
//     (sorter, n) engine cache amortizes;
//   * steady-state batch throughput (kvec/s) and the backend the engine
//     resolved to.
//
// Then the self-check tier is priced (this is the number ISSUE 10's Cheap
// tier stands on):
//
//   * micro: one 512-lane batch of sorted outputs verified by the Full 0-1
//     oracle (is_sorted_ascending + popcount) vs the Cheap structural probe
//     (one bit-sliced pass of periodic-k's single block, L(y) == y) -- the
//     probe is one block where the sorter is t blocks, so ~1/t the work;
//   * macro: the same closed-loop load served through SortService with
//     self_check = Off / Cheap / Full, reported as vectors/second.
//
// Writes BENCH_tab2_sorters.json.  --quick runs a seconds-scale subset for
// ctest, still writes the JSON, then re-reads it and validates the schema
// keys and family coverage (exit 2 on a miss), matching bench_permute.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "absort/netlist/analyze.hpp"
#include "absort/netlist/batch_eval.hpp"
#include "absort/netlist/optimize.hpp"
#include "absort/service/sort_service.hpp"
#include "absort/sorters/periodic_k.hpp"
#include "absort/sorters/registry.hpp"
#include "absort/util/bitvec.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;
using Clock = std::chrono::steady_clock;

std::size_t hw_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

/// Constructs a registry entry's sorter at the largest size it accepts from
/// a comparability-ordered preference list (every entry accepts at least one
/// n <= 12 -- the exhaustive sweep enforces that -- so the scan cannot come
/// back empty-handed).
std::unique_ptr<sorters::BinarySorter> make_at_preferred(const sorters::RegistryEntry& e,
                                                         std::size_t* n_used) {
  const std::size_t candidates[] = {64, 128, 256, 32, 16, 12, 8, 6, 4, 2};
  for (const std::size_t n : candidates) {
    try {
      auto s = e.factory(n);
      *n_used = n;
      return s;
    } catch (const std::exception&) {
    }
  }
  return nullptr;
}

struct Row {
  std::string family;
  std::size_t n = 0;
  bool comb = false;
  double cost = 0, depth = 0;      ///< paper-unit accounting (comb only)
  std::size_t components = 0;      ///< raw circuit components (comb only)
  std::size_t opt_after = 0;       ///< components after netlist::optimize
  double compile_ms = 0;           ///< make_batch_sorter wall time
  double kvps = 0;                 ///< batch throughput, kilovectors/s
  std::string backend;
};

Row measure_row(const sorters::RegistryEntry& e, bool quick) {
  Row r;
  r.family = e.name;
  auto s = make_at_preferred(e, &r.n);
  if (!s) {
    std::fprintf(stderr, "E-T2b: %s accepts no candidate size\n", e.name);
    std::exit(2);
  }
  r.comb = s->is_combinational();
  if (r.comb) {
    const auto c = s->build_circuit();
    const auto rep = netlist::analyze_unit(c);
    r.cost = rep.cost;
    r.depth = rep.depth;
    r.components = rep.components;
    netlist::OptimizeStats os;
    (void)netlist::optimize(c, &os);
    r.opt_after = os.after;
  } else {
    // Model B: no single circuit; use the analytic cost face.
    const auto rep = s->cost_report(netlist::CostModel::paper_unit());
    r.cost = rep.cost;
    r.depth = rep.depth;
  }

  const auto tc = Clock::now();
  const auto engine = s->make_batch_sorter();
  r.compile_ms = us_since(tc) / 1e3;
  r.backend = netlist::to_string(engine->backend());

  Xoshiro256 rng(0x7AB2 ^ r.n);
  const std::size_t lanes = quick ? 512 : 4096;
  std::vector<BitVec> batch;
  batch.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) batch.push_back(workload::random_bits(rng, r.n));
  (void)engine->run(batch);  // warm
  const std::size_t reps = quick ? 3 : 10;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < reps; ++i) (void)engine->run(batch);
  r.kvps = static_cast<double>(lanes * reps) / us_since(t0) * 1e3;
  return r;
}

// ------------------------------------------------- self-check tier pricing

struct ProbeMicro {
  std::size_t n = 0, lanes = 0, iterations = 0;
  double oracle_us = 0;  ///< Full 0-1 oracle, one batch
  double probe_us = 0;   ///< Cheap structural probe, one batch
};

/// One 512-lane batch of sorted periodic-k outputs verified both ways.
/// Both checkers see the same healthy data, so this prices the check
/// itself; detection equivalence is test_service_faults' differential sweep.
ProbeMicro probe_vs_oracle(bool quick) {
  ProbeMicro m;
  m.n = 48;
  m.lanes = netlist::kBlockLanes;
  const sorters::PeriodicKSorter s(m.n, 3);
  m.iterations = s.iterations();

  Xoshiro256 rng(0x0B5E55ED);
  std::vector<BitVec> in, out;
  for (std::size_t i = 0; i < m.lanes; ++i) {
    in.push_back(workload::random_bits(rng, m.n));
    out.push_back(BitVec::sorted_with_ones(m.n, in.back().count_ones()));
  }

  const std::size_t reps = quick ? 50 : 400;

  // Full oracle: per-lane monotonicity + popcount conservation.
  const auto t0 = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    std::size_t bad = 0;
    for (std::size_t i = 0; i < m.lanes; ++i) {
      if (!out[i].is_sorted_ascending() || out[i].count_ones() != in[i].count_ones()) ++bad;
    }
    ::benchmark::DoNotOptimize(bad);
  }
  m.oracle_us = us_since(t0) / static_cast<double>(reps);

  // Cheap probe: one bit-sliced pass of the single block, L(y) == y,
  // compared in the packed word domain (the service's Cheap tier path).
  const netlist::BitSlicedEvaluator probe(*s.self_check_probe(), {});
  std::vector<wordvec::Word> mm(wordvec::num_passes(m.lanes));
  std::vector<wordvec::Vec> scratch;
  const auto t1 = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    probe.check_fixpoint_lane_block({out.data(), m.lanes}, 0, m.lanes, scratch, mm);
    std::size_t bad = 0;
    for (const auto w : mm) bad += static_cast<std::size_t>(__builtin_popcountll(w));
    ::benchmark::DoNotOptimize(bad);
  }
  m.probe_us = us_since(t1) / static_cast<double>(reps);
  return m;
}

struct PipelinePoint {
  const char* mode = "";
  double vps = 0;
};

/// The per-batch pipeline the service executes for one coalesced
/// kBlockLanes batch -- engine pass plus the tier's check -- without the
/// queueing around it (submit/future overhead swamps a <2% per-batch delta
/// in the closed-loop numbers below; this isolates what the tier costs).
std::vector<PipelinePoint> pipeline_tiers(bool quick) {
  const std::size_t n = 48;
  const sorters::PeriodicKSorter s(n, 3);
  const auto engine = s.make_batch_sorter();
  const netlist::BitSlicedEvaluator probe(*s.self_check_probe(), {});
  Xoshiro256 rng(0x917E11);
  const std::size_t lanes = netlist::kBlockLanes;
  std::vector<BitVec> batch;
  for (std::size_t i = 0; i < lanes; ++i) batch.push_back(workload::random_bits(rng, n));
  std::vector<BitVec> out(lanes, BitVec(n));
  std::vector<wordvec::Word> mm(wordvec::num_passes(lanes));
  std::vector<wordvec::Vec> scratch;
  const std::size_t reps = quick ? 60 : 500;

  std::vector<PipelinePoint> pts;
  for (const char* mode : {"off", "cheap", "full"}) {
    const auto t0 = Clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      engine->run(batch, out);
      std::size_t bad = 0;
      if (std::strcmp(mode, "cheap") == 0) {
        probe.check_fixpoint_lane_block(out, 0, lanes, scratch, mm);
        for (const auto w : mm) bad += static_cast<std::size_t>(__builtin_popcountll(w));
      } else if (std::strcmp(mode, "full") == 0) {
        for (std::size_t i = 0; i < lanes; ++i) {
          if (!out[i].is_sorted_ascending() || out[i].count_ones() != batch[i].count_ones()) {
            ++bad;
          }
        }
      }
      ::benchmark::DoNotOptimize(bad);
    }
    pts.push_back({mode, static_cast<double>(lanes * reps) / us_since(t0) * 1e6});
  }
  return pts;
}

struct ServicePoint {
  const char* mode = "";
  double vps = 0;
  std::uint64_t cheap_checks = 0, failed = 0;
};

/// Closed-loop producers through one SortService with the given tier.
ServicePoint drive_tier(service::SelfCheck sc, const char* mode, bool quick) {
  service::ServiceOptions so;
  so.self_check = sc;
  service::SortService svc(so);
  const char* sorter = "periodic-k";
  const std::size_t n = 48;
  {
    Xoshiro256 warm(1);
    (void)svc.sort(sorter, workload::random_bits(warm, n));
  }
  const std::size_t producers = 4;
  const std::size_t per_producer = quick ? 150 : 1500;
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Xoshiro256 rng(0x5C ^ (p * 0x9E3779B97F4A7C15ULL));
      std::vector<std::future<service::SortResult>> window;
      for (std::size_t i = 0; i < per_producer; ++i) {
        window.push_back(svc.submit(sorter, workload::random_bits(rng, n)));
        if (window.size() >= 8) {
          (void)window.front().get();
          window.erase(window.begin());
        }
      }
      for (auto& f : window) (void)f.get();
    });
  }
  for (auto& t : threads) t.join();
  const double secs = us_since(t0) / 1e6;

  ServicePoint pt;
  pt.mode = mode;
  pt.vps = static_cast<double>(producers * per_producer) / secs;
  const auto st = svc.stats();
  pt.cheap_checks = st.cheap_checks;
  pt.failed = st.self_check_failed;
  return pt;
}

// ----------------------------------------------------------- JSON reporting

void write_json(const std::vector<Row>& rows, const ProbeMicro& m,
                const std::vector<PipelinePoint>& pipe, const std::vector<ServicePoint>& pts) {
  FILE* f = std::fopen("BENCH_tab2_sorters.json", "w");
  if (!f) {
    std::fprintf(stderr, "E-T2b: cannot write BENCH_tab2_sorters.json\n");
    std::exit(2);
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"tab2_sorters\",\n  \"hardware_threads\": %zu,\n"
               "  \"rows\": [\n",
               hw_threads());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"sorter\": \"%s\", \"n\": %zu, \"combinational\": %s, "
                 "\"cost\": %.0f, \"depth\": %.0f, \"components\": %zu, "
                 "\"opt_components\": %zu, \"compile_ms\": %.2f, \"kvps\": %.1f, "
                 "\"backend\": \"%s\"}%s\n",
                 r.family.c_str(), r.n, r.comb ? "true" : "false", r.cost, r.depth,
                 r.components, r.opt_after, r.compile_ms, r.kvps, r.backend.c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"self_check\": {\n"
               "    \"probe_n\": %zu, \"probe_lanes\": %zu, \"iterations\": %zu,\n"
               "    \"oracle_us_per_batch\": %.1f, \"probe_us_per_batch\": %.1f,\n"
               "    \"probe_speedup\": %.2f,\n    \"pipeline_vps\": {",
               m.n, m.lanes, m.iterations, m.oracle_us, m.probe_us,
               m.probe_us > 0 ? m.oracle_us / m.probe_us : 0.0);
  for (std::size_t i = 0; i < pipe.size(); ++i) {
    std::fprintf(f, "\"%s\": %.0f%s", pipe[i].mode, pipe[i].vps,
                 i + 1 < pipe.size() ? ", " : "");
  }
  std::fprintf(f, "},\n    \"service_vps\": {");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::fprintf(f, "\"%s\": %.0f%s", pts[i].mode, pts[i].vps,
                 i + 1 < pts.size() ? ", " : "");
  }
  std::fprintf(f, "}\n  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_tab2_sorters.json\n");
}

/// Schema check on the emitted JSON: re-read the file and insist every
/// required key and every registered sorter family appears.  The --quick
/// ctest smoke runs this too, so a reporting regression fails tier-1.
void check_json_schema() {
  FILE* f = std::fopen("BENCH_tab2_sorters.json", "r");
  if (!f) {
    std::fprintf(stderr, "E-T2b: BENCH_tab2_sorters.json missing after write\n");
    std::exit(2);
  }
  std::string contents;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, got);
  std::fclose(f);

  const char* required[] = {
      "\"benchmark\": \"tab2_sorters\"", "\"hardware_threads\"", "\"rows\"",
      "\"sorter\"",                      "\"cost\"",             "\"depth\"",
      "\"compile_ms\"",                  "\"kvps\"",             "\"backend\"",
      "\"self_check\"",                  "\"oracle_us_per_batch\"",
      "\"probe_us_per_batch\"",          "\"probe_speedup\"",    "\"pipeline_vps\"",
      "\"service_vps\"",
      "\"off\"",                         "\"cheap\"",            "\"full\"",
  };
  bool ok = true;
  for (const char* key : required) {
    if (contents.find(key) == std::string::npos) {
      std::fprintf(stderr, "E-T2b: BENCH_tab2_sorters.json missing key %s\n", key);
      ok = false;
    }
  }
  for (const auto& e : sorters::registry()) {
    if (contents.find(std::string("\"") + e.name + "\"") == std::string::npos) {
      std::fprintf(stderr, "E-T2b: BENCH_tab2_sorters.json missing family \"%s\"\n",
                   e.name);
      ok = false;
    }
  }
  if (!ok) std::exit(2);
  std::printf("BENCH_tab2_sorters.json schema ok\n");
}

void report(bool quick) {
  absort::bench::heading("E-T2b: sorter families, measured rows (paper-unit accounting)");
  std::printf("%16s %5s %5s %9s %7s %7s %8s %11s %11s %12s\n", "sorter", "n", "comb",
              "cost", "depth", "comps", "opt", "compile ms", "kvec/s", "backend");
  std::vector<Row> rows;
  for (const auto& e : sorters::registry()) {
    const auto r = measure_row(e, quick);
    rows.push_back(r);
    std::printf("%16s %5zu %5s %9.0f %7.0f %7zu %8zu %11.2f %11.1f %12s\n",
                r.family.c_str(), r.n, r.comb ? "yes" : "no", r.cost, r.depth,
                r.components, r.opt_after, r.compile_ms, r.kvps, r.backend.c_str());
  }

  absort::bench::heading("E-T2b: self-check pricing (periodic-k n=48, 512-lane batch)");
  const auto m = probe_vs_oracle(quick);
  std::printf("full 0-1 oracle : %8.1f us/batch\n", m.oracle_us);
  std::printf("cheap probe     : %8.1f us/batch  (1 block vs t = %zu blocks)\n", m.probe_us,
              m.iterations);
  std::printf("probe speedup   : %8.2fx\n", m.probe_us > 0 ? m.oracle_us / m.probe_us : 0.0);

  absort::bench::heading("E-T2b: per-batch pipeline by tier (engine pass + check, 512 lanes)");
  const auto pipe = pipeline_tiers(quick);
  for (const auto& pt : pipe) {
    std::printf("%6s : %10.0f vec/s\n", pt.mode, pt.vps);
  }

  absort::bench::heading("E-T2b: closed-loop service throughput by tier (periodic-k n=48)");
  std::vector<ServicePoint> pts;
  pts.push_back(drive_tier(service::SelfCheck::Off, "off", quick));
  pts.push_back(drive_tier(service::SelfCheck::Cheap, "cheap", quick));
  pts.push_back(drive_tier(service::SelfCheck::Full, "full", quick));
  for (const auto& pt : pts) {
    std::printf("%6s : %10.0f vec/s  (cheap_checks=%llu, self_check_failed=%llu)\n", pt.mode,
                pt.vps, static_cast<unsigned long long>(pt.cheap_checks),
                static_cast<unsigned long long>(pt.failed));
  }

  write_json(rows, m, pipe, pts);
  check_json_schema();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  report(quick);
  return 0;
}
