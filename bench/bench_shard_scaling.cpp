// E-S2 -- sharded-service scaling: vectors/sec of the per-core executor
// design (PR "sharded SortService") as the shard count grows, under
// saturating closed-loop producer load, plus a saturation study with
// producers far beyond the core count.
//
// Traffic is deliberately hot-key: every producer submits one (sorter, n)
// key, so the affinity hash concentrates the whole load on a single home
// shard and *work stealing* is what spreads it -- the hardest case for the
// sharded design (a uniformly mixed key population spreads by hashing alone
// and never needs to steal).  The steal-rate column (steals per evaluated
// batch) and the stolen-request fraction quantify how much of the load the
// thieves actually carried.
//
// Honesty columns: every row records the machine's hardware_threads, the
// shard count it ran with, and threads_used = shards x the resolved
// per-engine worker count (the service divides hardware_concurrency across
// shards so it never oversubscribes).  On a 1-core host the curve is
// expected to be flat or slightly negative -- shards > hardware_threads
// time-slice one core; the rows are still measured and reported as-is
// (EXPERIMENTS.md discusses the 1-core outcome).  The e_s1_parity row
// re-runs the exact E-S1 configuration (8 producers, window 8, linger
// 200 us, 1 shard) so the 1-shard regression criterion is checked against a
// like-for-like number.
//
// Writes BENCH_shard_scaling.json; --quick runs a seconds-scale smoke
// subset for ctest (no JSON, numbers are not steady-state).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "absort/netlist/batch_eval.hpp"
#include "absort/service/sort_service.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

std::size_t hw_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct ShardLoad {
  double vps = 0;
  double mean_batch = 0;
  double steal_rate = 0;       ///< steals per evaluated micro-batch
  double stolen_fraction = 0;  ///< completed requests served off their home shard
  double lane_occupancy = 0;   ///< live lanes / (batches * max_batch_lanes), all shards
  std::uint64_t p50_wait_us = 0;
  std::uint64_t p99_wait_us = 0;
  std::size_t shards = 1;
  std::size_t threads_used = 1;
};

/// Saturating closed-loop load: `producers` threads, `window` in-flight
/// requests each, all submitting the same hot (sorter, n) key.  The engine is
/// warmed before timing so rows measure steady-state serving.
ShardLoad drive(const service::ServiceOptions& so, const char* sorter, std::size_t n,
                std::size_t producers, std::size_t window, std::size_t requests_per_producer) {
  service::SortService svc(so);
  {
    Xoshiro256 warm_rng(1);
    (void)svc.sort(sorter, workload::random_bits(warm_rng, n));
  }
  const auto warm = svc.stats();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Xoshiro256 rng(0x5CA1E ^ (p * 0x9E3779B97F4A7C15ULL));
      std::vector<std::future<service::SortResult>> inflight;
      for (std::size_t i = 0; i < requests_per_producer; ++i) {
        inflight.push_back(svc.submit(sorter, workload::random_bits(rng, n)));
        if (inflight.size() >= window) {
          (void)inflight.front().get();
          inflight.erase(inflight.begin());
        }
      }
      for (auto& f : inflight) (void)f.get();
    });
  }
  for (auto& t : threads) t.join();
  const double secs = seconds_since(t0);

  const auto st = svc.stats();
  ShardLoad r;
  r.vps = static_cast<double>(producers * requests_per_producer) / secs;
  const std::uint64_t batches = st.batches - warm.batches;
  const std::uint64_t done = st.completed - warm.completed;
  r.mean_batch = batches ? static_cast<double>(done) / static_cast<double>(batches) : 0.0;
  r.steal_rate = batches ? static_cast<double>(st.steals) / static_cast<double>(batches) : 0.0;
  r.stolen_fraction =
      done ? static_cast<double>(st.stolen_requests) / static_cast<double>(done) : 0.0;
  // Batch-weighted mean of the per-shard occupancies == total live lanes over
  // total batch capacity across all shards.
  double occ_weighted = 0;
  for (const auto& sh : st.per_shard) {
    occ_weighted += sh.lane_occupancy * static_cast<double>(sh.batches);
  }
  r.lane_occupancy = st.batches ? occ_weighted / static_cast<double>(st.batches) : 0.0;
  r.p50_wait_us = st.queue_wait_us.percentile(0.50);
  r.p99_wait_us = st.queue_wait_us.percentile(0.99);
  r.shards = svc.shard_count();
  const std::size_t engine_threads = svc.options().batch.threads;
  r.threads_used = r.shards * (engine_threads ? engine_threads : hw_threads());
  return r;
}

service::ServiceOptions sharded_options(std::size_t shards) {
  service::ServiceOptions so;
  so.shards = shards;
  so.max_batch_lanes = netlist::kBlockLanes;
  so.max_linger = std::chrono::microseconds(200);
  so.steal_threshold = 4;
  return so;
}

struct ScaleRow {
  const char* sorter;
  std::size_t n;
  std::size_t producers, window;
  ShardLoad load;
  double speedup_vs_1;
};

struct SatRow {
  std::size_t n;
  std::size_t shards, producers;
  ShardLoad load;
};

void report(bool quick) {
  const std::size_t hw = hw_threads();
  // 1/2/4/.../hw_threads; always reach at least 4 so the curve exists (and
  // is honestly flat) even on small hosts where shards > cores time-slice.
  std::vector<std::size_t> shard_counts{1, 2, 4};
  for (std::size_t s = 8; s <= hw; s *= 2) shard_counts.push_back(s);
  if (quick) shard_counts = {1, 2};

  absort::bench::heading("E-S2: shard scaling, hot-key saturating load");
  std::printf("%zu hardware threads, %zu-lane blocks%s\n\n", hw, netlist::kBlockLanes,
              quick ? " [quick]" : "");
  std::printf("%-8s %6s %7s %5s %12s %8s %8s %8s %7s %10s\n", "sorter", "n", "shards",
              "prod", "v/s", "vs 1sh", "steal/b", "stolen%", "occup", "p99 wait");

  const std::size_t producers = 16, window = 32;
  std::vector<ScaleRow> rows;
  const struct {
    const char* sorter;
    std::size_t n;
  } cases[] = {{"prefix", 256}, {"prefix", 1024}};
  for (const auto& c : cases) {
    if (quick && c.n > 256) continue;
    const std::size_t reqs = quick ? 100 : (c.n >= 1024 ? 400 : 1250);
    double base_vps = 0;
    for (const std::size_t shards : shard_counts) {
      const auto load = drive(sharded_options(shards), c.sorter, c.n, producers, window, reqs);
      if (shards == 1) base_vps = load.vps;
      const double speedup = base_vps > 0 ? load.vps / base_vps : 0.0;
      rows.push_back(ScaleRow{c.sorter, c.n, producers, window, load, speedup});
      std::printf("%-8s %6zu %7zu %5zu %12.0f %7.2fx %8.3f %7.1f%% %6.1f%% %9llu\n",
                  c.sorter, c.n, shards, producers, load.vps, speedup, load.steal_rate,
                  load.stolen_fraction * 100.0, load.lane_occupancy * 100.0,
                  static_cast<unsigned long long>(load.p99_wait_us));
    }
  }

  absort::bench::heading("E-S2b: saturation (producers >> cores, fixed shards)");
  std::printf("%6s %7s %5s %12s %8s %10s %10s\n", "n", "shards", "prod", "v/s", "steal/b",
              "p50 wait", "p99 wait");
  std::vector<SatRow> sat;
  const std::size_t sat_shards = quick ? 2 : shard_counts.back();
  for (const std::size_t prod : quick ? std::vector<std::size_t>{8}
                                      : std::vector<std::size_t>{4, 16, 64}) {
    const std::size_t n = 256;
    const std::size_t reqs = quick ? 50 : std::max<std::size_t>(20000 / prod, 64);
    const auto load = drive(sharded_options(sat_shards), "prefix", n, prod, window, reqs);
    sat.push_back(SatRow{n, sat_shards, prod, load});
    std::printf("%6zu %7zu %5zu %12.0f %8.3f %9llu %9llu\n", n, sat_shards, prod, load.vps,
                load.steal_rate, static_cast<unsigned long long>(load.p50_wait_us),
                static_cast<unsigned long long>(load.p99_wait_us));
  }

  // E-S1 parity: the exact PR 3 configuration (8 producers, window 8, linger
  // 200 us, 1 shard) so the no-single-core-regression criterion compares
  // like with like.
  const auto parity =
      drive(sharded_options(1), "prefix", 256, 8, 8, quick ? 100 : 1200);
  std::printf("\nE-S1 parity row (prefix 256, 8 producers, window 8, 1 shard): %.0f v/s\n",
              parity.vps);

  if (quick) return;  // smoke mode: no JSON, numbers are not steady-state

  if (FILE* f = std::fopen("BENCH_shard_scaling.json", "w")) {
    std::fprintf(f,
                 "{\n  \"benchmark\": \"shard_scaling\",\n  \"hardware_threads\": %zu,\n"
                 "  \"block_lanes\": %zu,\n  \"steal_threshold\": 4,\n  \"scaling\": [\n",
                 hw, netlist::kBlockLanes);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ScaleRow& r = rows[i];
      std::fprintf(f,
                   "    {\"sorter\": \"%s\", \"n\": %zu, \"shards\": %zu, "
                   "\"threads_used\": %zu, \"producers\": %zu, \"window\": %zu, "
                   "\"vps\": %.1f, \"speedup_vs_1shard\": %.3f, \"steal_rate\": %.4f, "
                   "\"stolen_fraction\": %.4f, \"lane_occupancy\": %.4f, "
                   "\"mean_batch\": %.1f, \"p99_wait_us\": %llu}%s\n",
                   r.sorter, r.n, r.load.shards, r.load.threads_used, r.producers, r.window,
                   r.load.vps, r.speedup_vs_1, r.load.steal_rate, r.load.stolen_fraction,
                   r.load.lane_occupancy, r.load.mean_batch,
                   static_cast<unsigned long long>(r.load.p99_wait_us),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"saturation\": [\n");
    for (std::size_t i = 0; i < sat.size(); ++i) {
      const SatRow& r = sat[i];
      std::fprintf(f,
                   "    {\"n\": %zu, \"shards\": %zu, \"producers\": %zu, \"vps\": %.1f, "
                   "\"steal_rate\": %.4f, \"p50_wait_us\": %llu, \"p99_wait_us\": %llu}%s\n",
                   r.n, r.shards, r.producers, r.load.vps, r.load.steal_rate,
                   static_cast<unsigned long long>(r.load.p50_wait_us),
                   static_cast<unsigned long long>(r.load.p99_wait_us),
                   i + 1 < sat.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"e_s1_parity\": {\"sorter\": \"prefix\", \"n\": 256, "
                 "\"producers\": 8, \"window\": 8, \"linger_us\": 200, \"shards\": 1, "
                 "\"vps\": %.1f}\n}\n",
                 parity.vps);
    std::fclose(f);
    std::printf("\nwrote BENCH_shard_scaling.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      report(/*quick=*/true);
      return 0;
    }
  }
  report(/*quick=*/false);
  return 0;
}
