// Experiment E-F4: Fig. 4 -- Batcher's odd-even merge network vs the
// alternative odd-even merge network with balanced merging blocks.

#include <cstdio>

#include "absort/netlist/analyze.hpp"
#include "absort/sorters/alt_oem.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/bitonic.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

void report() {
  bench::heading("Fig. 4: odd-even merge sorting networks, 16 inputs");
  {
    sorters::BatcherOemSorter batcher(16);
    sorters::AltOemSorter alt(16);
    sorters::AltOemSorter alt_full(16, /*include_redundant_first_stage=*/true);
    const auto rb = netlist::analyze_unit(batcher.build_circuit());
    const auto ra = netlist::analyze_unit(alt.build_circuit());
    const auto rf = netlist::analyze_unit(alt_full.build_circuit());
    std::printf("Batcher OEM (Fig. 4a):            cost %5.0f  depth %3.0f\n", rb.cost, rb.depth);
    std::printf("alternative OEM (Fig. 4b):        cost %5.0f  depth %3.0f\n", ra.cost, ra.depth);
    std::printf("  + redundant first stage (figure): cost %5.0f  depth %3.0f\n", rf.cost,
                rf.depth);
  }

  bench::heading("sweep: comparator cost of the two schemes");
  std::printf("%8s %14s %14s %10s\n", "n", "Batcher", "alternative", "alt/Batcher");
  for (std::size_t e = 3; e <= 12; ++e) {
    const std::size_t n = std::size_t{1} << e;
    const auto b = sorters::BatcherOemSorter::expected_comparators(n);
    const auto a = sorters::AltOemSorter::expected_comparators(n);
    std::printf("%8zu %14zu %14zu %10.3f\n", n, b, a,
                static_cast<double>(a) / static_cast<double>(b));
  }
  std::printf("(the alternative trades a costlier merge step for trivial input sorters;\n"
              " the adaptive patch-up of Network 1 is what removes the overhead)\n");
}

template <typename Sorter>
void bm_sort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Sorter s(n);
  Xoshiro256 rng(3);
  auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.sort(in));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_BatcherSort(benchmark::State& s) { bm_sort<sorters::BatcherOemSorter>(s); }
void BM_AltOemSort(benchmark::State& s) { bm_sort<sorters::AltOemSorter>(s); }
void BM_BitonicSort(benchmark::State& s) { bm_sort<sorters::BitonicSorter>(s); }
BENCHMARK(BM_BatcherSort)->RangeMultiplier(4)->Range(64, 4096)->Complexity();
BENCHMARK(BM_AltOemSort)->RangeMultiplier(4)->Range(64, 4096)->Complexity();
BENCHMARK(BM_BitonicSort)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_BatcherNetlistEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sorters::BatcherOemSorter s(n);
  const auto c = s.build_circuit();
  Xoshiro256 rng(4);
  auto in = workload::random_bits(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.eval(in));
  }
}
BENCHMARK(BM_BatcherNetlistEval)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
