#pragma once
// Shared helpers for the benchmark harness.  Every bench binary prints its
// paper-reproduction report (the table/figure it regenerates) and then runs
// its google-benchmark timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace absort::bench {

inline void heading(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Call from main(): print the report, then hand over to google-benchmark.
template <typename ReportFn>
int run(int argc, char** argv, ReportFn&& report) {
  report();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace absort::bench
