// Experiments E-F10 / E-T2: Fig. 10's radix permuter built from binary
// sorters, and Table II -- the bit-level comparison of permutation network
// designs -- with measured values filled in for every row we built.

#include <cstdio>

#include "absort/analysis/tables.hpp"
#include "absort/netlist/analyze.hpp"
#include "absort/networks/benes.hpp"
#include "absort/networks/radix_permuter.hpp"
#include "absort/networks/sorting_permuter.hpp"
#include "absort/sorters/batcher_oem.hpp"
#include "absort/sorters/fish_sorter.hpp"
#include "absort/sorters/muxmerge_sorter.hpp"
#include "absort/util/math.hpp"
#include "absort/util/rng.hpp"
#include "bench_common.hpp"

namespace {

using namespace absort;

sorters::SorterFactory fish_factory() {
  return [](std::size_t n) -> std::unique_ptr<sorters::BinarySorter> {
    if (n >= 8) return sorters::FishSorter::make(n);
    return sorters::MuxMergeSorter::make(n);
  };
}
sorters::SorterFactory muxmerge_factory() {
  return [](std::size_t n) { return sorters::MuxMergeSorter::make(n); };
}

void report() {
  const auto unit = netlist::CostModel::paper_unit();
  const std::size_t n = 1 << 12;

  auto rows = analysis::table2(n);
  // Fill measured values for the rows this library implements.
  {
    const auto c = netlist::analyze_unit(networks::BenesNetwork(n).build_circuit());
    // time: looping set-up is sequential O(n lg n); Table II charges the
    // parallel routing model of [18] -- we report the network traversal depth
    // as the measured time and leave set-up to the analytic column.
    rows[0].measured = analysis::Complexity{c.cost, c.depth, c.depth};
  }
  {
    // The word-level Batcher permuter built for real (addresses sorted by
    // lg n-bit compare-exchanges).
    networks::SortingPermuter sp(n);
    const auto r = sp.cost_report();
    rows[1].measured = analysis::Complexity{r.cost, r.depth, sp.routing_time()};
  }
  {
    networks::RadixPermuter rp(n, fish_factory());
    rows[4].measured = analysis::Complexity{rp.cost_report(unit).cost, rp.cost_report(unit).depth,
                                            rp.routing_time(unit)};
  }
  {
    networks::RadixPermuter rp(n, muxmerge_factory());
    rows[5].measured = analysis::Complexity{rp.cost_report(unit).cost, rp.cost_report(unit).depth,
                                            rp.routing_time(unit)};
  }
  std::printf("%s", analysis::render_table2(rows, n).c_str());

  bench::heading("radix permuter cost scaling (fish engine; paper eq. 26: O(n lg n))");
  std::printf("%8s %14s %12s %14s %12s\n", "n", "cost(fish)", "/n lg n", "cost(muxmrg)",
              "/n lg^2 n");
  for (std::size_t e = 6; e <= 14; e += 2) {
    const std::size_t m = std::size_t{1} << e;
    const double cf = networks::RadixPermuter(m, fish_factory()).cost_report(unit).cost;
    const double cm = networks::RadixPermuter(m, muxmerge_factory()).cost_report(unit).cost;
    const double l = lg(double(m));
    std::printf("%8zu %14.0f %12.3f %14.0f %12.3f\n", m, cf, cf / (double(m) * l), cm,
                cm / (double(m) * l * l));
  }

  bench::heading("routing-time scaling (paper eq. 27: O(lg^3 n))");
  std::printf("%8s %16s %10s\n", "n", "time (fish)", "/lg^3 n");
  for (std::size_t e = 6; e <= 14; e += 2) {
    const std::size_t m = std::size_t{1} << e;
    const double t = networks::RadixPermuter(m, fish_factory()).routing_time(unit);
    const double l = lg(double(m));
    std::printf("%8zu %16.0f %10.3f\n", m, t, t / (l * l * l));
  }
}

void BM_BenesLooping(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  networks::BenesNetwork net(n);
  Xoshiro256 rng(12);
  const auto dest = workload::random_permutation(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.compute_controls(dest));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BenesLooping)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_RadixPermuterRouteMuxMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  networks::RadixPermuter rp(n, muxmerge_factory());
  Xoshiro256 rng(13);
  const auto dest = workload::random_permutation(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rp.route(dest));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixPermuterRouteMuxMerge)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_RadixPermuterRouteFish(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  networks::RadixPermuter rp(n, fish_factory());
  Xoshiro256 rng(14);
  const auto dest = workload::random_permutation(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rp.route(dest));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixPermuterRouteFish)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

}  // namespace

int main(int argc, char** argv) { return absort::bench::run(argc, argv, report); }
